package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// The scenario composition algebra. Real traffic is never one pure
// pattern — it is background chatter with a scan layered on top, a
// DDoS that follows a worm, a beacon hiding under flash-crowd volume.
// The combinators below build such mixtures out of catalog entries
// while preserving the Scenario chunk contract, so a composed
// scenario shards across any worker count exactly like a primitive
// one: every combinator derives its chunk partition purely from the
// component partitions, and Emit routes each chunk to its component
// with a deterministic transform of the emitted events (a time
// offset, a time dilation, a host relabeling). Components that
// publish ground-truth schedules keep them — Overlay merges phase
// lists, Sequence offsets them into the slots, Dilate stretches them
// — so a composed scenario still grades analyst exercises.
//
// The declarative counterpart of this file is spec.go: ParseSpec
// turns expressions like
//
//	overlay(background, sequence(scan@10s, ddos))
//
// into the same combinator trees without writing code.

// Composite is implemented by composed scenarios; the bridge and the
// CLIs use it to ask what a mixture is made of (disentangle
// questions, mixture readings).
type Composite interface {
	// Components returns the direct sub-scenarios, in composition
	// order.
	Components() []Scenario
}

// Leaves flattens a scenario into its primitive (non-composite)
// scenarios, in composition order. A primitive scenario is its own
// single leaf.
func Leaves(s Scenario) []Scenario {
	c, ok := s.(Composite)
	if !ok {
		return []Scenario{s}
	}
	var out []Scenario
	for _, sub := range c.Components() {
		out = append(out, Leaves(sub)...)
	}
	return out
}

// componentNames joins component names for composed display names.
func componentNames(components []Scenario) string {
	names := make([]string, len(components))
	for i, s := range components {
		names[i] = s.Name()
	}
	return strings.Join(names, ",")
}

// locateChunk resolves a global chunk index against per-component
// chunk counts: chunk k belongs to the component whose cumulative
// range contains k, at local index k minus the range start.
func locateChunk(counts []int, k int) (component, local int) {
	for i, c := range counts {
		if k < c {
			return i, k
		}
		k -= c
	}
	// Unreachable when k < sum(counts); planRun bounds k.
	return len(counts) - 1, k
}

// sortPhases orders a merged phase list by start time, then label,
// giving Overlay a deterministic ground-truth timeline.
func sortPhases(phases []Phase) []Phase {
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].Start != phases[j].Start {
			return phases[i].Start < phases[j].Start
		}
		return phases[i].Label < phases[j].Label
	})
	return phases
}

// ——— overlay ———

// overlayScenario layers components over the same timeline.
type overlayScenario struct {
	components []Scenario
}

// Overlay composes scenarios that run simultaneously over the same
// [0, Duration) timeline with the same parameters: the resulting
// traffic matrix is the cell-wise sum of the components' matrices —
// a scan on top of background chatter, a beacon under flash-crowd
// volume. Chunks are the concatenation of the component partitions,
// so the overlay shards across workers exactly like its parts.
func Overlay(components ...Scenario) Scenario {
	return overlayScenario{components: components}
}

func (o overlayScenario) Components() []Scenario { return o.components }

func (o overlayScenario) Name() string {
	return "overlay(" + componentNames(o.components) + ")"
}

func (o overlayScenario) Description() string {
	return fmt.Sprintf("%d scenarios layered over one timeline", len(o.components))
}

func (o overlayScenario) Shape() string {
	shapes := make([]string, len(o.components))
	for i, s := range o.components {
		shapes[i] = s.Shape()
	}
	return "overlay of: " + strings.Join(shapes, " + ")
}

func (o overlayScenario) chunkCounts(net *Network, p Params) []int {
	counts := make([]int, len(o.components))
	for i, s := range o.components {
		counts[i] = s.Chunks(net, p)
	}
	return counts
}

func (o overlayScenario) Chunks(net *Network, p Params) int {
	total := 0
	for _, c := range o.chunkCounts(net, p) {
		total += c
	}
	return total
}

func (o overlayScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	ci, local := locateChunk(o.chunkCounts(net, p), chunk)
	return o.components[ci].Emit(net, rng, p, local, emit)
}

// ChunkSpan delegates to the component that owns the chunk: an
// overlay keeps every component's own time locality.
func (o overlayScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	ci, local := locateChunk(o.chunkCounts(net, p), chunk)
	return chunkSpan(o.components[ci], net, p, local)
}

// Schedule merges the components' ground-truth phases onto one
// timeline, sorted by start time. Components without a schedule
// contribute nothing.
func (o overlayScenario) Schedule(p Params) []Phase {
	var out []Phase
	for _, s := range o.components {
		if sched, ok := s.(Scheduler); ok {
			out = append(out, sched.Schedule(p)...)
		}
	}
	return sortPhases(out)
}

// ——— sequence ———

// SeqStep is one slot of a Sequence: a scenario and the seconds it
// occupies. Duration 0 means an equal share of whatever the outer
// Params.Duration leaves after the explicitly timed steps.
type SeqStep struct {
	Scenario Scenario
	Duration float64
}

// sequenceScenario concatenates components in time.
type sequenceScenario struct {
	steps []SeqStep
}

// Sequence composes scenarios that run one after another, each in an
// equal share of the total duration: a worm followed by the DDoS it
// staged, a scan before the attack it planned. Use SequenceSteps to
// give steps explicit durations (the spec grammar's scan@10s).
func Sequence(components ...Scenario) Scenario {
	steps := make([]SeqStep, len(components))
	for i, s := range components {
		steps[i] = SeqStep{Scenario: s}
	}
	return sequenceScenario{steps: steps}
}

// SequenceSteps is Sequence with explicit per-step durations; steps
// with Duration 0 split the remaining time equally. When the timed
// steps already consume the whole duration, a step's slot collapses
// to nothing and generation fails with a configuration error rather
// than silently omitting the step's traffic.
func SequenceSteps(steps ...SeqStep) Scenario {
	return sequenceScenario{steps: append([]SeqStep(nil), steps...)}
}

func (q sequenceScenario) Components() []Scenario {
	out := make([]Scenario, len(q.steps))
	for i, st := range q.steps {
		out[i] = st.Scenario
	}
	return out
}

func (q sequenceScenario) Name() string {
	names := make([]string, len(q.steps))
	for i, st := range q.steps {
		names[i] = st.Scenario.Name()
		if st.Duration > 0 {
			names[i] += "@" + formatSeconds(st.Duration)
		}
	}
	return "sequence(" + strings.Join(names, ",") + ")"
}

func (q sequenceScenario) Description() string {
	return fmt.Sprintf("%d scenarios concatenated in time", len(q.steps))
}

func (q sequenceScenario) Shape() string {
	shapes := make([]string, len(q.steps))
	for i, st := range q.steps {
		shapes[i] = st.Scenario.Shape()
	}
	return "sequence of: " + strings.Join(shapes, " then ")
}

// slots resolves each step's [start, start+dur) interval within the
// outer duration: explicitly timed steps keep their length, the rest
// split the remainder equally.
func (q sequenceScenario) slots(p Params) []Phase {
	fixed, untimed := 0.0, 0
	for _, st := range q.steps {
		if st.Duration > 0 {
			fixed += st.Duration
		} else {
			untimed++
		}
	}
	share := 0.0
	if untimed > 0 {
		if rest := p.Duration - fixed; rest > 0 {
			share = rest / float64(untimed)
		}
	}
	out := make([]Phase, len(q.steps))
	start := 0.0
	for i, st := range q.steps {
		dur := st.Duration
		if dur <= 0 {
			dur = share
		}
		out[i] = Phase{Label: st.Scenario.Name(), Start: start, End: start + dur}
		start += dur
	}
	return out
}

// stepParams is the Params a step's component runs with: the slot
// length as its whole world, everything else inherited.
func stepParams(p Params, slot Phase) Params {
	p.Duration = slot.End - slot.Start
	return p
}

func (q sequenceScenario) chunkCounts(net *Network, p Params) []int {
	slots := q.slots(p)
	counts := make([]int, len(q.steps))
	for i, st := range q.steps {
		if slots[i].End <= slots[i].Start {
			// A collapsed slot keeps one chunk so the chunk math stays
			// well defined; emitting that chunk reports the
			// configuration error (see Emit).
			counts[i] = 1
			continue
		}
		counts[i] = st.Scenario.Chunks(net, stepParams(p, slots[i]))
	}
	return counts
}

func (q sequenceScenario) Chunks(net *Network, p Params) int {
	total := 0
	for _, c := range q.chunkCounts(net, p) {
		total += c
	}
	return total
}

func (q sequenceScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	slots := q.slots(p)
	ci, local := locateChunk(q.chunkCounts(net, p), chunk)
	slot := slots[ci]
	if slot.End <= slot.Start {
		// A collapsed slot would silently drop the step's traffic
		// while Leaves and the bridge still advertise it as a layer —
		// a lesson whose "correct" answer names an absent behaviour.
		// Fail loudly instead: the run's duration cannot hold the
		// sequence.
		fixed := 0.0
		for _, st := range q.steps {
			if st.Duration > 0 {
				fixed += st.Duration
			}
		}
		return fmt.Errorf("netsim: sequence step %q gets no time in a %gs run (timed steps consume %gs)",
			q.steps[ci].Scenario.Name(), p.Duration, fixed)
	}
	return q.steps[ci].Scenario.Emit(net, rng, stepParams(p, slot), local, func(e Event) {
		e.Time += slot.Start
		emit(e)
	})
}

// ChunkSpan maps the owning step's span into its slot: the inner
// span (computed against the slot-local params) shifted by the slot
// start. A step without its own span is bounded below by its slot
// start but not above — inner emissions could in principle trail past
// the slot, so the conservative upper bound stays open. A collapsed
// slot reports an unbounded span; generating it fails anyway.
func (q sequenceScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	slots := q.slots(p)
	ci, local := locateChunk(q.chunkCounts(net, p), chunk)
	slot := slots[ci]
	if slot.End <= slot.Start {
		return 0, math.Inf(1)
	}
	if sp, ok := q.steps[ci].Scenario.(ChunkSpanner); ok {
		start, end := sp.ChunkSpan(net, stepParams(p, slot), local)
		return slot.Start + start, slot.Start + end
	}
	return slot.Start, math.Inf(1)
}

// Schedule offsets each step's ground-truth phases into its slot;
// steps without their own schedule contribute one phase labeled with
// the step's name spanning the slot, so the sequence always exposes a
// full timeline.
func (q sequenceScenario) Schedule(p Params) []Phase {
	p = p.withDefaults()
	slots := q.slots(p)
	var out []Phase
	for i, st := range q.steps {
		slot := slots[i]
		if slot.End <= slot.Start {
			continue
		}
		if sched, ok := st.Scenario.(Scheduler); ok {
			for _, ph := range sched.Schedule(stepParams(p, slot)) {
				out = append(out, Phase{
					Label: ph.Label,
					Start: ph.Start + slot.Start,
					End:   ph.End + slot.Start,
				})
			}
			continue
		}
		out = append(out, Phase{Label: st.Scenario.Name(), Start: slot.Start, End: slot.End})
	}
	return out
}

// ——— dilate ———

// dilateScenario stretches a component's script in time.
type dilateScenario struct {
	inner  Scenario
	factor float64
}

// Dilate stretches a scenario's script by factor: the component runs
// its script over Duration/factor seconds of internal time and every
// event timestamp is multiplied by factor, so the same traffic spans
// the full duration at 1/factor the temporal density — a scan slowed
// to evade rate alarms, a beacon with a longer period. factor must be
// positive; factors below 1 compress instead.
func Dilate(s Scenario, factor float64) Scenario {
	return dilateScenario{inner: s, factor: factor}
}

func (d dilateScenario) Components() []Scenario { return []Scenario{d.inner} }

func (d dilateScenario) Name() string {
	return "dilate(" + d.inner.Name() + "," + formatFloat(d.factor) + ")"
}

func (d dilateScenario) Description() string {
	return fmt.Sprintf("%s stretched %gx in time", d.inner.Name(), d.factor)
}

func (d dilateScenario) Shape() string { return d.inner.Shape() }

// innerParams shrinks the duration the component sees; emitted times
// stretch back by the same factor.
func (d dilateScenario) innerParams(p Params) Params {
	if d.factor > 0 {
		p.Duration /= d.factor
	}
	return p
}

func (d dilateScenario) Chunks(net *Network, p Params) int {
	if d.factor <= 0 || math.IsNaN(d.factor) || math.IsInf(d.factor, 0) {
		return 0 // planRun reports this as a configuration error
	}
	return d.inner.Chunks(net, d.innerParams(p))
}

func (d dilateScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	return d.inner.Emit(net, rng, d.innerParams(p), chunk, func(e Event) {
		e.Time *= d.factor
		emit(e)
	})
}

// ChunkSpan stretches the component's span by the factor, exactly
// like the emitted timestamps.
func (d dilateScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	if d.factor <= 0 {
		return 0, math.Inf(1)
	}
	start, end := chunkSpan(d.inner, net, d.innerParams(p), chunk)
	return start * d.factor, end * d.factor
}

// Schedule stretches the component's phase timeline by the factor.
func (d dilateScenario) Schedule(p Params) []Phase {
	sched, ok := d.inner.(Scheduler)
	if !ok || d.factor <= 0 {
		return nil
	}
	p = p.withDefaults()
	var out []Phase
	for _, ph := range sched.Schedule(d.innerParams(p)) {
		out = append(out, Phase{Label: ph.Label, Start: ph.Start * d.factor, End: ph.End * d.factor})
	}
	return out
}

// ——— amplify ———

// amplifyScenario multiplies a component's volume.
type amplifyScenario struct {
	inner Scenario
	n     int
}

// Amplify multiplies a scenario's volume by repeating its script n
// more times (a Scale multiplier): amplify(beacon, 50) turns one
// covert channel into a campaign. n must be ≥ 1.
func Amplify(s Scenario, n int) Scenario {
	return amplifyScenario{inner: s, n: n}
}

func (a amplifyScenario) Components() []Scenario { return []Scenario{a.inner} }

func (a amplifyScenario) Name() string {
	return "amplify(" + a.inner.Name() + "," + strconv.Itoa(a.n) + ")"
}

func (a amplifyScenario) Description() string {
	return fmt.Sprintf("%s at %dx volume", a.inner.Name(), a.n)
}

func (a amplifyScenario) Shape() string { return a.inner.Shape() }

func (a amplifyScenario) innerParams(p Params) Params {
	p.Scale *= a.n
	return p
}

func (a amplifyScenario) Chunks(net *Network, p Params) int {
	if a.n < 1 {
		return 0 // planRun reports this as a configuration error
	}
	return a.inner.Chunks(net, a.innerParams(p))
}

func (a amplifyScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	return a.inner.Emit(net, rng, a.innerParams(p), chunk, emit)
}

// ChunkSpan passes the component's span through under the scaled
// params (amplification adds volume, not time).
func (a amplifyScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	if a.n < 1 {
		return 0, math.Inf(1)
	}
	return chunkSpan(a.inner, net, a.innerParams(p), chunk)
}

// Schedule passes the component's timeline through unchanged
// (amplification adds volume, not time).
func (a amplifyScenario) Schedule(p Params) []Phase {
	if sched, ok := a.inner.(Scheduler); ok {
		return sched.Schedule(p)
	}
	return nil
}

// ——— relabel ———

// relabelScenario renames hosts in a component's events.
type relabelScenario struct {
	inner   Scenario
	mapping map[string]string
}

// Relabel renames hosts in a scenario's emitted events: an event's
// source and destination are looked up in mapping, names absent from
// it pass through unchanged. With a mapping that permutes the
// network's hosts, the relabeled matrix is exactly the symmetric
// permutation matrix.PermuteCSR computes from the original — the
// shape survives, only the axis labels move, which is what makes
// relabeled variants of one scenario distinct exercises. Mapping a
// host to a name outside the network drops those packets (counted in
// Stats.Dropped), the same sensor semantics as any foreign name.
func Relabel(s Scenario, mapping map[string]string) Scenario {
	m := make(map[string]string, len(mapping))
	for k, v := range mapping {
		m[k] = v
	}
	return relabelScenario{inner: s, mapping: m}
}

func (r relabelScenario) Components() []Scenario { return []Scenario{r.inner} }

func (r relabelScenario) Name() string {
	pairs := make([]string, 0, len(r.mapping))
	for k, v := range r.mapping {
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return "relabel(" + r.inner.Name() + "," + strings.Join(pairs, ",") + ")"
}

func (r relabelScenario) Description() string {
	return fmt.Sprintf("%s with %d hosts relabeled", r.inner.Name(), len(r.mapping))
}

func (r relabelScenario) Shape() string { return r.inner.Shape() + " (hosts permuted)" }

func (r relabelScenario) Chunks(net *Network, p Params) int {
	return r.inner.Chunks(net, p)
}

func (r relabelScenario) rename(name string) string {
	if to, ok := r.mapping[name]; ok {
		return to
	}
	return name
}

func (r relabelScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	return r.inner.Emit(net, rng, p, chunk, func(e Event) {
		e.Src = r.rename(e.Src)
		e.Dst = r.rename(e.Dst)
		emit(e)
	})
}

// ChunkSpan passes the component's span through unchanged
// (relabeling moves hosts, not time).
func (r relabelScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	return chunkSpan(r.inner, net, p, chunk)
}

// Schedule passes the component's timeline through unchanged
// (relabeling moves hosts, not time).
func (r relabelScenario) Schedule(p Params) []Phase {
	if sched, ok := r.inner.(Scheduler); ok {
		return sched.Schedule(p)
	}
	return nil
}

// PermutationOf resolves a Relabel host mapping into an axis
// permutation usable with matrix.PermuteCSR: perm[i] is the axis
// position host i's traffic moves to. Every mapping key and value
// must name a network host and the mapping must be injective, so the
// result is a bijection on [0, net.Len()).
func PermutationOf(net *Network, mapping map[string]string) ([]int, error) {
	if net == nil {
		return nil, fmt.Errorf("netsim: nil network")
	}
	perm := make([]int, net.Len())
	for i := range perm {
		perm[i] = i
	}
	for from, to := range mapping {
		i, ok := net.Index(from)
		if !ok {
			return nil, fmt.Errorf("netsim: relabel source %q is not a network host", from)
		}
		j, ok := net.Index(to)
		if !ok {
			return nil, fmt.Errorf("netsim: relabel target %q is not a network host", to)
		}
		perm[i] = j
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			return nil, fmt.Errorf("netsim: relabel mapping is not a permutation (two hosts map to %q)",
				net.Host(p).Name)
		}
		seen[p] = true
	}
	return perm, nil
}

// ——— timed ———

// timedScenario pins a component's duration regardless of the outer
// Params: the spec grammar's name@10s outside a sequence.
type timedScenario struct {
	inner Scenario
	dur   float64
}

// Timed fixes a scenario's duration to dur seconds regardless of the
// outer Params.Duration: inside an Overlay, timed(scan, 10) confines
// the scan to the first ten seconds of a longer mixture. Inside a
// Sequence, prefer SequenceSteps, which also sizes the slot.
func Timed(s Scenario, dur float64) Scenario {
	return timedScenario{inner: s, dur: dur}
}

func (t timedScenario) Components() []Scenario { return []Scenario{t.inner} }

func (t timedScenario) Name() string {
	return t.inner.Name() + "@" + formatSeconds(t.dur)
}

func (t timedScenario) Description() string {
	return fmt.Sprintf("%s confined to %gs", t.inner.Name(), t.dur)
}

func (t timedScenario) Shape() string { return t.inner.Shape() }

func (t timedScenario) innerParams(p Params) Params {
	p.Duration = t.dur
	return p
}

func (t timedScenario) Chunks(net *Network, p Params) int {
	if t.dur <= 0 || math.IsNaN(t.dur) || math.IsInf(t.dur, 0) {
		return 0 // planRun reports this as a configuration error
	}
	return t.inner.Chunks(net, t.innerParams(p))
}

func (t timedScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	return t.inner.Emit(net, rng, t.innerParams(p), chunk, emit)
}

// ChunkSpan reports the component's span at the pinned duration.
func (t timedScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	if t.dur <= 0 || math.IsNaN(t.dur) || math.IsInf(t.dur, 0) {
		return 0, math.Inf(1)
	}
	return chunkSpan(t.inner, net, t.innerParams(p), chunk)
}

// Schedule reports the component's timeline at the pinned duration.
func (t timedScenario) Schedule(p Params) []Phase {
	if sched, ok := t.inner.(Scheduler); ok {
		return sched.Schedule(t.innerParams(p))
	}
	return nil
}

// ——— named ———

// namedScenario gives a composed scenario a catalog-friendly name:
// RegisterSpec wraps parse results with it.
type namedScenario struct {
	Scenario
	name string
	desc string
}

// Named overrides a scenario's name (and, when desc is non-empty, its
// description): the handle RegisterSpec files composed scenarios
// under.
func Named(s Scenario, name, desc string) Scenario {
	if desc == "" {
		desc = s.Description()
	}
	return namedScenario{Scenario: s, name: name, desc: desc}
}

func (n namedScenario) Name() string        { return n.name }
func (n namedScenario) Description() string { return n.desc }

// Components unwraps to the underlying scenario so mixture tooling
// sees through the rename.
func (n namedScenario) Components() []Scenario { return []Scenario{n.Scenario} }

// ChunkSpan forwards the underlying scenario's time locality:
// embedding the Scenario interface only promotes its declared
// methods, so the optional span contract needs an explicit forward.
func (n namedScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	return chunkSpan(n.Scenario, net, p, chunk)
}

// Schedule forwards the underlying scenario's ground truth.
func (n namedScenario) Schedule(p Params) []Phase {
	if sched, ok := n.Scenario.(Scheduler); ok {
		return sched.Schedule(p)
	}
	return nil
}

// formatSeconds renders a duration for composed names: "10s".
func formatSeconds(d float64) string {
	return formatFloat(d) + "s"
}

// formatFloat renders a number without trailing zeros, avoiding
// exponent notation: composed names double as spec source (see
// SpecString), and the spec grammar's numbers are plain decimals.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if strings.ContainsAny(s, "eE") {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return s
}
