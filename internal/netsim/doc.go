// Package netsim simulates the network behaviours the learning
// modules teach, at packet-event granularity, through a concurrent,
// extensible scenario engine. Where the paper's figures are
// hand-drawn snapshots, netsim generates the same shapes live:
// scripted scenarios emit timestamped events that aggregate into
// traffic matrices, which the pattern classifiers then recognize.
// The analyst examples and the Fig 9 cross-check build on this
// substrate.
//
// # Scenario interface and catalog
//
// A traffic script is a value implementing Scenario: it names
// itself, describes the traffic-matrix shape it draws, partitions
// its workload into independent chunks, and emits each chunk's
// events from a private RNG. Scenarios register into a catalog
// (Register / LookupScenario / Scenarios) that twsim lists and runs
// by name. Scenarios whose script follows a fixed timeline also
// implement Scheduler, exposing labeled phases as ground truth for
// analyst exercises.
//
// The built-in catalog holds eight scenarios. The first four mirror
// the paper's modules, the rest extend the space of teachable
// behaviours; each draws a distinct matrix shape:
//
//   - background: benign workstation↔server/external chatter — a
//     loose blue/grey mesh.
//   - scan: one adversary probes every blue host — an external
//     supernode of unreciprocated fan-out (Fig 6d live).
//   - attack: the four-stage notional attack — traffic migrating
//     red→red, red→grey, grey→blue, blue→blue across four
//     zone-pure quarters (Fig 7 live).
//   - ddos: the four-component DDoS — C2 clique, botnet tasking
//     rows, a heavy fan-in flood column on the victim, and
//     backscatter (Fig 9 live).
//   - worm: a self-propagating worm doubling through blue space —
//     one red→blue seed plus an unreciprocated blue→blue cascade
//     tree.
//   - exfil: bulk data theft — a single dominant blue→grey cell
//     whose volume dwarfs its reverse.
//   - flashcrowd: a legitimate demand spike — an internal supernode
//     of heavy reciprocated fan-in on the blue server, the benign
//     twin of the DDoS flood.
//   - beacon: covert C2 beaconing — a single light periodic
//     blue→red link.
//
// patterns.ClassifyBehavior recognizes the four extended shapes;
// patterns.ClassifyTopology, ClassifyAttackStage, and ClassifyDDoS
// cover the originals; patterns.ClassifyMixtureOf scores all eight
// at once for composed traffic.
//
// # Composition algebra
//
// Real traffic is never one pure pattern, so the catalog is closed
// under composition: Overlay layers scenarios over one timeline,
// Sequence concatenates them in time (with optional per-step
// durations), Dilate stretches a script's tempo, Amplify multiplies
// its volume, and Relabel permutes its hosts (the matrix-level twin
// of matrix.PermuteCSR). Every combinator implements the same
// Scenario chunk contract, deriving its partition from its
// components', so composed scenarios shard across workers exactly
// like primitives; Scheduler phase lists are merged, offset, or
// stretched so ground truth survives. ParseSpec builds combinator
// trees from expressions like
//
//	overlay(background, sequence(scan@10s, ddos))
//
// and RegisterSpec files the result into the catalog at runtime.
//
// # Concurrency model
//
// Generation is deterministic-parallel. A scenario's Chunks method
// fixes a worker-count-independent partition of its workload;
// GenerateTrace and GenerateMatrix fan the chunk indices across a
// worker pool, seeding chunk k's RNG from (seed, k) by splitmix64.
// Workers accumulate into private stores — per-chunk trace slots, or
// per-worker sparse COO shards merged by matrix.MergeCOO, whose
// duplicate-summing compaction is order-insensitive — so for a given
// (scenario, network, seed, params) the aggregate output is
// bit-identical on 1 worker or N. The legacy Background, Scan,
// AttackScenario, and DDoSScenario functions are thin adapters
// running the same scripts on one worker.
//
// # Streaming
//
// The batch entry points materialize everything before returning;
// StreamTrace and StreamCSR are their bounded-memory siblings.
// StreamTrace delivers the trace as chunk-ordered frames through a
// back-pressured reorder ring; StreamCSR folds events straight into
// an incremental per-window compactor and hands each window's CSR to
// a callback the moment it seals — long before the run completes.
// Sealing is driven by the optional ChunkSpanner interface
// (conservative per-chunk time bounds; every catalog entry and
// combinator implements it), and because a window's CSR is a pure
// function of its event multiset, streamed windows are bit-identical
// to Trace.WindowsCSR's for any worker count — pinned by the
// streaming parity suite.
package netsim
