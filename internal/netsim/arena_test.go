package netsim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/matrix"
)

// The pooled generation paths must be bit-identical to the pool-free
// ones — a nil arena IS the pool-free path, so each test runs the
// same configuration through both and compares outputs, then runs the
// pooled side again to prove the recycled slabs reproduce the same
// result (the use-after-release hazard a pooling bug would create).

func arenaTestConfig(t *testing.T) (Scenario, *Network, Params) {
	t.Helper()
	s, ok := LookupScenario("background")
	if !ok {
		t.Fatal("background scenario missing")
	}
	return s, ScaledNetwork(48), Params{Duration: 30, Rate: 20}
}

func TestGenerateTraceArenaParity(t *testing.T) {
	s, net, p := arenaTestConfig(t)
	plain, err := GenerateTrace(s, net, 5, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for round := 0; round < 3; round++ {
		tr, err := GenerateTraceArena(context.Background(), a, s, net, 5, 4, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, tr) {
			t.Fatalf("round %d: arena trace differs from plain trace", round)
		}
		a.ReleaseTrace(tr)
	}
	st := a.Stats()
	if st.Events.Hits == 0 {
		t.Fatalf("no event slab reuse across rounds: %+v", st.Events)
	}
}

func TestGenerateCSRArenaParity(t *testing.T) {
	s, net, p := arenaTestConfig(t)
	plain, plainStats, err := GenerateCSR(s, net, 9, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	var first *matrix.CSR
	for round := 0; round < 3; round++ {
		csr, stats, err := GenerateCSRArena(context.Background(), a, s, net, 9, 4, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats != plainStats {
			t.Fatalf("round %d: stats %+v != %+v", round, stats, plainStats)
		}
		if !reflect.DeepEqual(plain.ToCOO().Entries(), csr.ToCOO().Entries()) {
			t.Fatalf("round %d: arena CSR differs from plain CSR", round)
		}
		if first == nil {
			first = csr
		}
	}
	// The first round's CSR is consumer-owned: later rounds recycling
	// builder slabs must not have touched it.
	if !reflect.DeepEqual(plain.ToCOO().Entries(), first.ToCOO().Entries()) {
		t.Fatal("consumer-owned CSR corrupted by later arena rounds")
	}
	if st := a.Stats(); st.Entries.Hits == 0 {
		t.Fatalf("no triple slab reuse across rounds: %+v", st.Entries)
	}
}

func TestStreamCSRArenaParity(t *testing.T) {
	s, net, p := arenaTestConfig(t)
	collect := func(a *Arena) ([]SparseWindow, *matrix.CSR, Stats) {
		var wins []SparseWindow
		agg, stats, err := StreamCSRArena(context.Background(), a, s, net, 3, 4, p, 5, 0, func(i int, w SparseWindow) error {
			if i != len(wins) {
				t.Fatalf("window %d out of order (have %d)", i, len(wins))
			}
			wins = append(wins, w)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return wins, agg, stats
	}
	plainWins, plainAgg, plainStats := collect(nil)
	a := NewArena()
	for round := 0; round < 3; round++ {
		wins, agg, stats := collect(a)
		if stats != plainStats {
			t.Fatalf("round %d: stats differ", round)
		}
		if len(wins) != len(plainWins) {
			t.Fatalf("round %d: %d windows, want %d", round, len(wins), len(plainWins))
		}
		for i := range wins {
			if !reflect.DeepEqual(plainWins[i].Matrix.ToCOO().Entries(), wins[i].Matrix.ToCOO().Entries()) {
				t.Fatalf("round %d: window %d differs", round, i)
			}
			if wins[i].Events != plainWins[i].Events || wins[i].Dropped != plainWins[i].Dropped {
				t.Fatalf("round %d: window %d tallies differ", round, i)
			}
		}
		if !reflect.DeepEqual(plainAgg.ToCOO().Entries(), agg.ToCOO().Entries()) {
			t.Fatalf("round %d: aggregate differs", round)
		}
	}
	if st := a.Stats(); st.Entries.Hits == 0 {
		t.Fatalf("no slab reuse across streaming rounds: %+v", st.Entries)
	}
}

func TestStreamTraceArenaParity(t *testing.T) {
	s, net, p := arenaTestConfig(t)
	collect := func(a *Arena) Trace {
		var got Trace
		// Frames are valid only until yield returns — and the arena
		// path really does recycle them — so the consumer must copy.
		err := StreamTraceArena(context.Background(), a, s, net, 7, 4, p, 0, func(f TraceFrame) error {
			got = append(got, f.Events...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got.Sort()
		return got
	}
	plain := collect(nil)
	want, err := GenerateTrace(s, net, 7, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Trace(want), plain) {
		t.Fatal("pool-free stream differs from batch trace")
	}
	a := NewArena()
	for round := 0; round < 3; round++ {
		if got := collect(a); !reflect.DeepEqual(plain, got) {
			t.Fatalf("round %d: arena stream differs", round)
		}
	}
	if st := a.Stats(); st.Events.Hits == 0 {
		t.Fatalf("no chunk buffer reuse: %+v", st.Events)
	}
}

func TestWindowsCSRArenaParity(t *testing.T) {
	s, net, p := arenaTestConfig(t)
	tr, err := GenerateTrace(s, net, 2, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := tr.WindowsCSR(net, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for round := 0; round < 2; round++ {
		wins, err := tr.WindowsCSRArena(context.Background(), a, net, 6, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(wins) != len(plain) {
			t.Fatalf("round %d: %d windows, want %d", round, len(wins), len(plain))
		}
		for i := range wins {
			if !reflect.DeepEqual(plain[i].Matrix.ToCOO().Entries(), wins[i].Matrix.ToCOO().Entries()) {
				t.Fatalf("round %d: window %d differs", round, i)
			}
		}
	}
	if st := a.Stats(); st.Entries.Puts == 0 {
		t.Fatalf("window shards were not released: %+v", st.Entries)
	}
}

func TestSparseMatrixArenaParity(t *testing.T) {
	s, net, p := arenaTestConfig(t)
	tr, err := GenerateTrace(s, net, 4, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	plain, plainDropped := tr.SparseMatrix(net)
	a := NewArena()
	for round := 0; round < 2; round++ {
		csr, dropped := tr.SparseMatrixArena(a, net)
		if dropped != plainDropped {
			t.Fatalf("round %d: dropped %d, want %d", round, dropped, plainDropped)
		}
		if !reflect.DeepEqual(plain.ToCOO().Entries(), csr.ToCOO().Entries()) {
			t.Fatalf("round %d: aggregate differs", round)
		}
	}
	if st := a.Stats(); st.Entries.Puts == 0 {
		t.Fatalf("accumulator was not released: %+v", st.Entries)
	}
}
