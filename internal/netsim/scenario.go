package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/patterns"
)

// The catalog's built-in scenarios. Each type scripts one behaviour
// the learning modules teach and partitions its workload into
// independent chunks per the Scenario contract (see catalog.go), so
// the engine in generator.go can generate any of them on any number
// of workers with identical aggregate output.
//
// The original four scripts (background, scan, attack, ddos) mirror
// the paper's modules; the other four extend the catalog with
// behaviours from the wider traffic-matrix literature, each drawing
// a distinct shape the pattern classifiers can recognize.

// blueHosts returns workstation and server names in axis order.
func blueHosts(net *Network) []string {
	var out []string
	for _, h := range net.hosts {
		if h.Role == RoleWorkstation || h.Role == RoleServer {
			out = append(out, h.Name)
		}
	}
	return out
}

// secondChunks is the chunk count for open-ended scenarios that
// stream traffic second by second: one chunk per (whole or partial)
// second of the timeline, repeated Scale times.
func secondChunks(p Params) int {
	return p.Scale * int(math.Ceil(p.Duration))
}

// secondSpan maps a chunk index onto its one-second slot [start,end)
// of the timeline. Scale repetitions revisit the same slots, adding
// volume without stretching time.
func secondSpan(p Params, chunk int) (start, end float64) {
	secs := int(math.Ceil(p.Duration))
	sec := chunk % secs
	start = float64(sec)
	end = math.Min(start+1, p.Duration)
	return start, end
}

// replyLag pads the streaming time span of the second-sliced
// scenarios: their request events stay inside the chunk's one-second
// slot, but reply events trail the request by up to 0.02s and may
// cross the slot (and window) boundary. The pad is deliberately
// generous — a span only delays window sealing, it never changes the
// traffic.
const replyLag = 0.05

// secondChunkSpan is the ChunkSpan of the second-sliced scenarios:
// the chunk's slot padded by the reply lag.
func secondChunkSpan(p Params, chunk int) (start, end float64) {
	start, end = secondSpan(p, chunk)
	return start, end + replyLag
}

// ——— background ———

// backgroundScenario emits benign traffic: workstations talk to the
// servers and browse the externals, and most flows get a reply. Its
// matrix is a loose benign mesh confined to blue and grey space.
type backgroundScenario struct{}

func (backgroundScenario) Name() string { return "background" }
func (backgroundScenario) Description() string {
	return "benign workstation↔server and workstation↔external chatter"
}
func (backgroundScenario) Shape() string { return "benign blue/grey mesh" }

func (backgroundScenario) Chunks(net *Network, p Params) int { return secondChunks(p) }

func (backgroundScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	return secondChunkSpan(p, chunk)
}

func (backgroundScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	workstations := net.ByRole(RoleWorkstation)
	servers := net.ByRole(RoleServer)
	externals := net.ByRole(RoleExternal)
	if len(workstations) == 0 || len(servers) == 0 {
		return fmt.Errorf("netsim: background needs workstations and a server")
	}
	start, end := secondSpan(p, chunk)
	// Allocate events so the chunks total ⌊rate·duration⌋ exactly,
	// matching the legacy Background volume: fractional rates below
	// one event/sec spread across seconds instead of rounding to
	// zero everywhere.
	n := int(math.Floor(p.Rate*end)) - int(math.Floor(p.Rate*start))
	for k := 0; k < n; k++ {
		t := start + rng.Float64()*(end-start)
		ws := workstations[rng.Intn(len(workstations))]
		var dst string
		switch {
		case len(externals) > 0 && rng.Float64() < 0.4:
			dst = externals[rng.Intn(len(externals))]
		default:
			dst = servers[rng.Intn(len(servers))]
		}
		emit(Event{Time: t, Src: ws, Dst: dst, Packets: 1 + rng.Intn(3)})
		// Most flows get a reply.
		if rng.Float64() < 0.8 {
			emit(Event{Time: t + 0.01, Src: dst, Dst: ws, Packets: 1 + rng.Intn(2)})
		}
	}
	return nil
}

// ——— scan ———

// scanScenario emits a reconnaissance sweep: an adversary probes
// every blue host once, spread across the duration — the external
// supernode shape appearing in live traffic. Scaled repetitions
// rotate through the adversaries.
type scanScenario struct{}

func (scanScenario) Name() string { return "scan" }
func (scanScenario) Description() string {
	return "adversary reconnaissance sweep probing every blue host"
}
func (scanScenario) Shape() string { return "external supernode (unreciprocated fan-out)" }

func (scanScenario) Chunks(net *Network, p Params) int { return p.Scale }

func (scanScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	advs := net.ByRole(RoleAdversary)
	if len(advs) == 0 {
		return fmt.Errorf("netsim: scan needs an adversary")
	}
	scanner := advs[chunk%len(advs)]
	targets := blueHosts(net)
	if len(targets) == 0 {
		return fmt.Errorf("netsim: scan needs blue hosts")
	}
	for k, dst := range targets {
		t := p.Duration * (float64(k) + rng.Float64()) / float64(len(targets))
		emit(Event{Time: t, Src: scanner, Dst: dst, Packets: 1})
	}
	return nil
}

// ——— attack ———

// attackScenario emits the paper's four-stage notional attack:
// planning in red space, staging into grey space, infiltration over
// the grey/blue border, and lateral movement inside blue space. Each
// stage occupies a quarter of the duration, so every window of the
// timeline is zone-pure and classifies as its own stage.
type attackScenario struct{}

func (attackScenario) Name() string { return "attack" }
func (attackScenario) Description() string {
	return "four-stage notional attack: planning, staging, infiltration, lateral movement"
}
func (attackScenario) Shape() string {
	return "zone migration: red→red, red→grey, grey→blue, blue→blue"
}

func (attackScenario) Chunks(net *Network, p Params) int { return p.Scale }

// stagePhases is the typed schedule the legacy API returns.
func (attackScenario) stagePhases(p Params) []AttackPhase {
	quarter := p.Duration / 4
	return []AttackPhase{
		{Stage: patterns.StagePlanning, Start: 0, End: quarter},
		{Stage: patterns.StageStaging, Start: quarter, End: 2 * quarter},
		{Stage: patterns.StageInfiltration, Start: 2 * quarter, End: 3 * quarter},
		{Stage: patterns.StageLateral, Start: 3 * quarter, End: p.Duration},
	}
}

// Schedule reports the stage timeline as generic ground-truth phases.
func (s attackScenario) Schedule(p Params) []Phase {
	p = p.withDefaults()
	var out []Phase
	for _, ph := range s.stagePhases(p) {
		out = append(out, Phase{Label: ph.Stage.String(), Start: ph.Start, End: ph.End})
	}
	return out
}

func (s attackScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	advs := net.ByRole(RoleAdversary)
	exts := net.ByRole(RoleExternal)
	blues := blueHosts(net)
	if len(advs) < 2 || len(exts) == 0 || len(blues) < 2 {
		return fmt.Errorf("netsim: attack needs ≥2 adversaries, externals, ≥2 blue hosts")
	}
	phases := s.stagePhases(p)
	jitter := func(ph AttackPhase) float64 {
		return ph.Start + rng.Float64()*(ph.End-ph.Start)
	}
	// Planning: adversaries coordinate pairwise in red space.
	for round := 0; round < 3; round++ {
		for i := range advs {
			j := (i + 1) % len(advs)
			t := jitter(phases[0])
			emit(Event{Time: t, Src: advs[i], Dst: advs[j], Packets: 1 + rng.Intn(2)})
			emit(Event{Time: t + 0.01, Src: advs[j], Dst: advs[i], Packets: 1})
		}
	}
	// Staging: each adversary provisions a greyspace host.
	for round := 0; round < 3; round++ {
		for i, adv := range advs {
			g := exts[i%len(exts)]
			t := jitter(phases[1])
			emit(Event{Time: t, Src: adv, Dst: g, Packets: 2})
			emit(Event{Time: t + 0.01, Src: g, Dst: adv, Packets: 1})
		}
	}
	// Infiltration: staged greyspace hosts push into blue space.
	for round := 0; round < 3; round++ {
		for i, g := range exts {
			b := blues[i%len(blues)]
			t := jitter(phases[2])
			emit(Event{Time: t, Src: g, Dst: b, Packets: 2})
			emit(Event{Time: t + 0.01, Src: b, Dst: g, Packets: 1})
		}
	}
	// Lateral movement: the foothold spreads between blue hosts.
	for round := 0; round < 3; round++ {
		for i := 0; i+1 < len(blues); i++ {
			t := jitter(phases[3])
			emit(Event{Time: t, Src: blues[i], Dst: blues[i+1], Packets: 2})
			emit(Event{Time: t + 0.01, Src: blues[i+1], Dst: blues[i], Packets: 1})
		}
	}
	return nil
}

// ——— ddos ———

// ddosScenario emits the paper's four-component DDoS: C2
// coordination, identical C2→bot instructions, the flood on the
// victim server, and the backscatter of replies. Roles follow the
// pattern library's standard cast so the classifier's ground truth
// matches.
type ddosScenario struct{}

func (ddosScenario) Name() string { return "ddos" }
func (ddosScenario) Description() string {
	return "four-component DDoS: C2 sync, botnet tasking, flood, backscatter"
}
func (ddosScenario) Shape() string { return "fan-in flood column on the victim with C2 clique" }

func (ddosScenario) Chunks(net *Network, p Params) int { return p.Scale }

// componentPhases is the typed schedule the legacy API returns.
func (ddosScenario) componentPhases(p Params) []DDoSPhase {
	quarter := p.Duration / 4
	return []DDoSPhase{
		{Component: patterns.DDoSC2, Start: 0, End: quarter},
		{Component: patterns.DDoSBotnet, Start: quarter, End: 2 * quarter},
		{Component: patterns.DDoSAttack, Start: 2 * quarter, End: 3 * quarter},
		{Component: patterns.DDoSBackscatter, Start: 3 * quarter, End: p.Duration},
	}
}

// Schedule reports the component timeline as generic ground-truth
// phases.
func (s ddosScenario) Schedule(p Params) []Phase {
	p = p.withDefaults()
	var out []Phase
	for _, ph := range s.componentPhases(p) {
		out = append(out, Phase{Label: ph.Component.String(), Start: ph.Start, End: ph.End})
	}
	return out
}

func (s ddosScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	zones, err := net.Zones()
	if err != nil {
		return err
	}
	roles, err := patterns.AssignDDoSRoles(zones)
	if err != nil {
		return err
	}
	labels := net.Labels()
	name := func(i int) string { return labels[i] }
	phases := s.componentPhases(p)
	jitter := func(ph DDoSPhase) float64 {
		return ph.Start + rng.Float64()*(ph.End-ph.Start)
	}
	// C2 sync.
	for round := 0; round < 4; round++ {
		for _, i := range roles.C2 {
			for _, j := range roles.C2 {
				if i != j {
					emit(Event{Time: jitter(phases[0]), Src: name(i), Dst: name(j), Packets: 1 + rng.Intn(2)})
				}
			}
		}
	}
	// Identical instructions to every bot.
	for round := 0; round < 2; round++ {
		for _, c2 := range roles.C2 {
			for _, bot := range roles.Bots {
				emit(Event{Time: jitter(phases[1]), Src: name(c2), Dst: name(bot), Packets: 2})
			}
		}
	}
	// The flood: every bot hammers the victim.
	for round := 0; round < 8; round++ {
		for _, bot := range roles.Bots {
			emit(Event{Time: jitter(phases[2]), Src: name(bot), Dst: name(roles.Victim), Packets: 3 + rng.Intn(4)})
		}
	}
	// Backscatter: the victim replies to the illegitimate traffic.
	for round := 0; round < 3; round++ {
		for _, bot := range roles.Bots {
			emit(Event{Time: jitter(phases[3]), Src: name(roles.Victim), Dst: name(bot), Packets: 1})
		}
	}
	return nil
}

// ——— worm ———

// wormScenario emits a self-propagating worm: an adversary seeds
// patient zero, then each generation every infected blue host
// compromises one more, doubling the infected population until blue
// space is saturated. The aggregate matrix is an unreciprocated
// blue→blue cascade tree rooted at a single red→blue seed — the
// doubling epidemic curve of the worm literature drawn as a traffic
// matrix.
type wormScenario struct{}

func (wormScenario) Name() string { return "worm" }
func (wormScenario) Description() string {
	return "self-propagating worm doubling through blue space from one red seed"
}
func (wormScenario) Shape() string { return "red→blue seed plus doubling blue→blue cascade tree" }

func (wormScenario) Chunks(net *Network, p Params) int { return p.Scale }

func (wormScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	advs := net.ByRole(RoleAdversary)
	blues := blueHosts(net)
	if len(advs) == 0 || len(blues) < 3 {
		return fmt.Errorf("netsim: worm needs an adversary and ≥3 blue hosts")
	}
	// Generations double the infected set: after g generations
	// min(2^g, n) hosts are infected, so saturation takes ⌈log₂ n⌉
	// generations plus the seed slot.
	gens := int(math.Ceil(math.Log2(float64(len(blues)))))
	slot := p.Duration / float64(gens+1)
	seeder := advs[chunk%len(advs)]
	emit(Event{
		Time: rng.Float64() * slot, Src: seeder, Dst: blues[0],
		Packets: 2 + rng.Intn(2),
	})
	infected := 1
	for g := 0; infected < len(blues); g++ {
		limit := infected // everyone infected so far spreads once
		for i := 0; i < limit && infected < len(blues); i++ {
			t := slot*float64(g+1) + rng.Float64()*slot
			emit(Event{Time: t, Src: blues[i], Dst: blues[infected], Packets: 2 + rng.Intn(2)})
			infected++
		}
	}
	return nil
}

// ——— exfiltration ———

// exfilScenario emits a data theft: one compromised workstation
// streams heavy flows to a single external staging host, with an
// occasional one-packet acknowledgement trickling back. The matrix
// shape is a single dominant blue→grey cell whose volume dwarfs its
// reverse — the asymmetry analysts hunt for.
type exfilScenario struct{}

func (exfilScenario) Name() string { return "exfil" }
func (exfilScenario) Description() string {
	return "bulk data exfiltration from one workstation to an external staging host"
}
func (exfilScenario) Shape() string { return "single dominant asymmetric blue→grey link" }

func (exfilScenario) Chunks(net *Network, p Params) int { return secondChunks(p) }

func (exfilScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	return secondChunkSpan(p, chunk)
}

func (exfilScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	workstations := net.ByRole(RoleWorkstation)
	externals := net.ByRole(RoleExternal)
	if len(workstations) == 0 || len(externals) == 0 {
		return fmt.Errorf("netsim: exfil needs a workstation and an external host")
	}
	src := workstations[0]
	dst := externals[len(externals)-1]
	start, end := secondSpan(p, chunk)
	n := int(math.Round(p.Rate * (end - start)))
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		t := start + rng.Float64()*(end-start)
		emit(Event{Time: t, Src: src, Dst: dst, Packets: 8 + rng.Intn(7)})
		// Sparse acknowledgements keep the reverse cell visible but
		// tiny, preserving the tell-tale asymmetry.
		if rng.Float64() < 0.3 {
			emit(Event{Time: t + 0.01, Src: dst, Dst: src, Packets: 1})
		}
	}
	return nil
}

// ——— flash crowd ———

// flashCrowdScenario emits a legitimate demand spike: every
// workstation and external client hammers the blue server at once (a
// viral link, a ticket drop). The shape is an internal supernode —
// one heavy fan-in column on a blue host — which students must learn
// to distinguish from the DDoS flood it superficially resembles.
type flashCrowdScenario struct{}

func (flashCrowdScenario) Name() string { return "flashcrowd" }
func (flashCrowdScenario) Description() string {
	return "legitimate demand spike: every client hits the blue server at once"
}
func (flashCrowdScenario) Shape() string {
	return "internal supernode (heavy reciprocated fan-in on the server)"
}

func (flashCrowdScenario) Chunks(net *Network, p Params) int { return secondChunks(p) }

func (flashCrowdScenario) ChunkSpan(net *Network, p Params, chunk int) (float64, float64) {
	return secondChunkSpan(p, chunk)
}

func (flashCrowdScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	servers := net.ByRole(RoleServer)
	if len(servers) == 0 {
		return fmt.Errorf("netsim: flashcrowd needs a server")
	}
	var clients []string
	clients = append(clients, net.ByRole(RoleWorkstation)...)
	clients = append(clients, net.ByRole(RoleExternal)...)
	if len(clients) < patterns.SupernodeFanThreshold {
		return fmt.Errorf("netsim: flashcrowd needs ≥%d clients", patterns.SupernodeFanThreshold)
	}
	srv := servers[len(servers)-1]
	start, end := secondSpan(p, chunk)
	for _, client := range clients {
		hits := 1 + rng.Intn(3)
		for h := 0; h < hits; h++ {
			t := start + rng.Float64()*(end-start)
			emit(Event{Time: t, Src: client, Dst: srv, Packets: 2 + rng.Intn(3)})
			if rng.Float64() < 0.5 {
				emit(Event{Time: t + 0.01, Src: srv, Dst: client, Packets: 1})
			}
		}
	}
	return nil
}

// ——— C2 beaconing ———

// beaconScenario emits covert command-and-control beaconing: a
// compromised workstation phones home to a red C2 host on a fixed
// period with slight jitter, one packet at a time, occasionally
// receiving a tasking reply. The matrix is a single light blue→red
// cell — nearly invisible next to any other traffic, which is the
// lesson.
type beaconScenario struct{}

func (beaconScenario) Name() string { return "beacon" }
func (beaconScenario) Description() string {
	return "covert C2 beaconing from a compromised workstation on a fixed period"
}
func (beaconScenario) Shape() string { return "single light periodic blue→red link" }

func (beaconScenario) Chunks(net *Network, p Params) int { return p.Scale }

func (beaconScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	workstations := net.ByRole(RoleWorkstation)
	advs := net.ByRole(RoleAdversary)
	if len(workstations) == 0 || len(advs) == 0 {
		return fmt.Errorf("netsim: beacon needs a workstation and an adversary C2")
	}
	src := workstations[len(workstations)-1]
	c2 := advs[0]
	beats := 16
	period := p.Duration / float64(beats)
	for k := 0; k < beats; k++ {
		t := (float64(k) + 0.1*rng.Float64()) * period
		emit(Event{Time: t, Src: src, Dst: c2, Packets: 1})
		// The occasional tasking reply.
		if rng.Float64() < 0.25 {
			emit(Event{Time: t + 0.02, Src: c2, Dst: src, Packets: 1})
		}
	}
	return nil
}

// ——— legacy single-threaded API ———

// The four original scenario functions remain as thin adapters over
// the catalog: each seeds the chunked engine from the caller's RNG
// stream and runs it on one worker, so existing callers keep their
// (seed-deterministic) behaviour while the scripts live in exactly
// one place.

// AttackPhase is one timed stage of the attack scenario.
type AttackPhase struct {
	// Stage is the pattern-library stage this phase acts out.
	Stage patterns.AttackStage
	// Start and End bound the phase in seconds.
	Start, End float64
}

// DDoSPhase is one timed component of the DDoS scenario.
type DDoSPhase struct {
	// Component is the pattern-library component this phase acts
	// out.
	Component patterns.DDoSComponent
	// Start and End bound the phase in seconds.
	Start, End float64
}

// Background emits benign traffic for the duration: workstations
// talk to the server and browse the externals, and the server
// replies. eventsPerSecond controls intensity. The result is the
// "random background noise" the paper suggests mixing into harder
// exercises.
func Background(net *Network, rng *rand.Rand, duration, eventsPerSecond float64) (Trace, error) {
	if rng == nil {
		return nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 || eventsPerSecond <= 0 {
		return nil, fmt.Errorf("netsim: duration and rate must be positive")
	}
	return GenerateTrace(backgroundScenario{}, net, rng.Int63(), 1,
		Params{Duration: duration, Rate: eventsPerSecond})
}

// Scan emits a reconnaissance sweep: one adversary probes every
// blue host once, spread across the duration — the external
// supernode shape appearing in live traffic.
func Scan(net *Network, rng *rand.Rand, duration float64) (Trace, error) {
	if rng == nil {
		return nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("netsim: duration must be positive")
	}
	return GenerateTrace(scanScenario{}, net, rng.Int63(), 1, Params{Duration: duration})
}

// AttackScenario emits the four-stage notional attack, each stage
// occupying a quarter of the duration. It returns the trace and the
// phase schedule (ground truth for the analyst examples).
func AttackScenario(net *Network, rng *rand.Rand, duration float64) (Trace, []AttackPhase, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 {
		return nil, nil, fmt.Errorf("netsim: duration must be positive")
	}
	p := Params{Duration: duration}
	trace, err := GenerateTrace(attackScenario{}, net, rng.Int63(), 1, p)
	if err != nil {
		return nil, nil, err
	}
	return trace, attackScenario{}.stagePhases(p.withDefaults()), nil
}

// DDoSScenario emits the four-component DDoS: C2 coordination,
// identical C2→bot instructions, the flood on the victim server,
// and the backscatter of replies. Roles follow the pattern
// library's standard cast so the classifier's ground truth matches.
func DDoSScenario(net *Network, rng *rand.Rand, duration float64) (Trace, []DDoSPhase, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 {
		return nil, nil, fmt.Errorf("netsim: duration must be positive")
	}
	p := Params{Duration: duration}
	trace, err := GenerateTrace(ddosScenario{}, net, rng.Int63(), 1, p)
	if err != nil {
		return nil, nil, err
	}
	return trace, ddosScenario{}.componentPhases(p.withDefaults()), nil
}
