package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/patterns"
)

// Scenarios script host behaviour over time and emit event traces.
// Each mirrors one learning module so the examples can show the
// module's pattern arising from live traffic instead of a hand-typed
// matrix.

// Background emits benign traffic for the duration: workstations
// talk to the server and browse the externals, and the server
// replies. eventsPerSecond controls intensity. The result is the
// "random background noise" the paper suggests mixing into harder
// exercises.
func Background(net *Network, rng *rand.Rand, duration, eventsPerSecond float64) (Trace, error) {
	if rng == nil {
		return nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 || eventsPerSecond <= 0 {
		return nil, fmt.Errorf("netsim: duration and rate must be positive")
	}
	workstations := net.ByRole(RoleWorkstation)
	servers := net.ByRole(RoleServer)
	externals := net.ByRole(RoleExternal)
	if len(workstations) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("netsim: background needs workstations and a server")
	}
	var trace Trace
	n := int(duration * eventsPerSecond)
	for k := 0; k < n; k++ {
		t := rng.Float64() * duration
		ws := workstations[rng.Intn(len(workstations))]
		var dst string
		switch {
		case len(externals) > 0 && rng.Float64() < 0.4:
			dst = externals[rng.Intn(len(externals))]
		default:
			dst = servers[rng.Intn(len(servers))]
		}
		packets := 1 + rng.Intn(3)
		trace = append(trace, Event{Time: t, Src: ws, Dst: dst, Packets: packets})
		// Most flows get a reply.
		if rng.Float64() < 0.8 {
			trace = append(trace, Event{Time: t + 0.01, Src: dst, Dst: ws, Packets: 1 + rng.Intn(2)})
		}
	}
	trace.Sort()
	return trace, nil
}

// Scan emits a reconnaissance sweep: one adversary probes every
// blue host once, spread across the duration — the external
// supernode shape appearing in live traffic.
func Scan(net *Network, rng *rand.Rand, duration float64) (Trace, error) {
	if rng == nil {
		return nil, fmt.Errorf("netsim: nil random source")
	}
	advs := net.ByRole(RoleAdversary)
	if len(advs) == 0 {
		return nil, fmt.Errorf("netsim: scan needs an adversary")
	}
	scanner := advs[0]
	var targets []string
	targets = append(targets, net.ByRole(RoleWorkstation)...)
	targets = append(targets, net.ByRole(RoleServer)...)
	if len(targets) == 0 {
		return nil, fmt.Errorf("netsim: scan needs blue hosts")
	}
	var trace Trace
	for k, dst := range targets {
		t := duration * (float64(k) + rng.Float64()) / float64(len(targets))
		trace = append(trace, Event{Time: t, Src: scanner, Dst: dst, Packets: 1})
	}
	trace.Sort()
	return trace, nil
}

// AttackPhase is one timed stage of the attack scenario.
type AttackPhase struct {
	// Stage is the pattern-library stage this phase acts out.
	Stage patterns.AttackStage
	// Start and End bound the phase in seconds.
	Start, End float64
}

// AttackScenario emits the four-stage notional attack, each stage
// occupying a quarter of the duration. It returns the trace and the
// phase schedule (ground truth for the analyst examples).
func AttackScenario(net *Network, rng *rand.Rand, duration float64) (Trace, []AttackPhase, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 {
		return nil, nil, fmt.Errorf("netsim: duration must be positive")
	}
	advs := net.ByRole(RoleAdversary)
	exts := net.ByRole(RoleExternal)
	blues := append(net.ByRole(RoleWorkstation), net.ByRole(RoleServer)...)
	if len(advs) < 2 || len(exts) == 0 || len(blues) < 2 {
		return nil, nil, fmt.Errorf("netsim: attack needs ≥2 adversaries, externals, ≥2 blue hosts")
	}
	quarter := duration / 4
	phases := []AttackPhase{
		{Stage: patterns.StagePlanning, Start: 0, End: quarter},
		{Stage: patterns.StageStaging, Start: quarter, End: 2 * quarter},
		{Stage: patterns.StageInfiltration, Start: 2 * quarter, End: 3 * quarter},
		{Stage: patterns.StageLateral, Start: 3 * quarter, End: duration},
	}
	var trace Trace
	emit := func(t float64, src, dst string, packets int) {
		trace = append(trace, Event{Time: t, Src: src, Dst: dst, Packets: packets})
	}
	jitter := func(p AttackPhase) float64 {
		return p.Start + rng.Float64()*(p.End-p.Start)
	}
	// Planning: adversaries coordinate pairwise in red space.
	for round := 0; round < 3; round++ {
		for i := range advs {
			j := (i + 1) % len(advs)
			t := jitter(phases[0])
			emit(t, advs[i], advs[j], 1+rng.Intn(2))
			emit(t+0.01, advs[j], advs[i], 1)
		}
	}
	// Staging: each adversary provisions a greyspace host.
	for round := 0; round < 3; round++ {
		for i, adv := range advs {
			g := exts[i%len(exts)]
			t := jitter(phases[1])
			emit(t, adv, g, 2)
			emit(t+0.01, g, adv, 1)
		}
	}
	// Infiltration: staged greyspace hosts push into blue space.
	for round := 0; round < 3; round++ {
		for i, g := range exts {
			b := blues[i%len(blues)]
			t := jitter(phases[2])
			emit(t, g, b, 2)
			emit(t+0.01, b, g, 1)
		}
	}
	// Lateral movement: the foothold spreads between blue hosts.
	for round := 0; round < 3; round++ {
		for i := 0; i+1 < len(blues); i++ {
			t := jitter(phases[3])
			emit(t, blues[i], blues[i+1], 2)
			emit(t+0.01, blues[i+1], blues[i], 1)
		}
	}
	trace.Sort()
	return trace, phases, nil
}

// DDoSPhase is one timed component of the DDoS scenario.
type DDoSPhase struct {
	// Component is the pattern-library component this phase acts
	// out.
	Component patterns.DDoSComponent
	// Start and End bound the phase in seconds.
	Start, End float64
}

// DDoSScenario emits the four-component DDoS: C2 coordination,
// identical C2→bot instructions, the flood on the victim server,
// and the backscatter of replies. Roles follow the pattern
// library's standard cast so the classifier's ground truth matches.
func DDoSScenario(net *Network, rng *rand.Rand, duration float64) (Trace, []DDoSPhase, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("netsim: nil random source")
	}
	if duration <= 0 {
		return nil, nil, fmt.Errorf("netsim: duration must be positive")
	}
	zones, err := net.Zones()
	if err != nil {
		return nil, nil, err
	}
	roles, err := patterns.AssignDDoSRoles(zones)
	if err != nil {
		return nil, nil, err
	}
	labels := net.Labels()
	name := func(i int) string { return labels[i] }
	quarter := duration / 4
	phases := []DDoSPhase{
		{Component: patterns.DDoSC2, Start: 0, End: quarter},
		{Component: patterns.DDoSBotnet, Start: quarter, End: 2 * quarter},
		{Component: patterns.DDoSAttack, Start: 2 * quarter, End: 3 * quarter},
		{Component: patterns.DDoSBackscatter, Start: 3 * quarter, End: duration},
	}
	var trace Trace
	emit := func(t float64, src, dst string, packets int) {
		trace = append(trace, Event{Time: t, Src: src, Dst: dst, Packets: packets})
	}
	jitter := func(p DDoSPhase) float64 {
		return p.Start + rng.Float64()*(p.End-p.Start)
	}
	// C2 sync.
	for round := 0; round < 4; round++ {
		for _, i := range roles.C2 {
			for _, j := range roles.C2 {
				if i != j {
					emit(jitter(phases[0]), name(i), name(j), 1+rng.Intn(2))
				}
			}
		}
	}
	// Identical instructions to every bot.
	for round := 0; round < 2; round++ {
		for _, c2 := range roles.C2 {
			for _, bot := range roles.Bots {
				emit(jitter(phases[1]), name(c2), name(bot), 2)
			}
		}
	}
	// The flood: every bot hammers the victim.
	for round := 0; round < 8; round++ {
		for _, bot := range roles.Bots {
			emit(jitter(phases[2]), name(bot), name(roles.Victim), 3+rng.Intn(4))
		}
	}
	// Backscatter: the victim replies to the illegitimate traffic.
	for round := 0; round < 3; round++ {
		for _, bot := range roles.Bots {
			emit(jitter(phases[3]), name(roles.Victim), name(bot), 1)
		}
	}
	trace.Sort()
	return trace, phases, nil
}
