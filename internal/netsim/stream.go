package netsim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// The streaming generation engine. The batch engine (generator.go)
// materializes every event before any analysis runs, so memory scales
// with duration×rate and nothing is observable mid-run. The two entry
// points here keep the same chunked determinism contract while
// bounding memory by chunk and window size instead of trace size:
//
//   - StreamTrace delivers the event stream itself, chunk by chunk in
//     chunk order, holding at most a small reorder ring of chunk
//     buffers — the raw feed for consumers that want events, not
//     matrices.
//   - StreamCSR folds events straight into an incremental per-window
//     compactor (matrix.WindowCompactor) and finalizes each window —
//     sealed CSR, in order — as soon as every chunk that could touch
//     it has finished, using the ChunkSpanner time-locality contract.
//     Time-to-first-window drops from O(run) to O(window) for
//     time-local scenarios.
//
// Determinism survives because a window's CSR is a pure function of
// the event multiset that lands in it: chunks derive all randomness
// from (seed, chunk), window membership depends only on each event's
// own timestamp, and COO compaction sorts by coordinate and sums —
// commutative — so any worker count and any arrival order compact to
// bit-identical windows. The batch-vs-stream parity suite
// (stream_test.go) pins this across the catalog, composed specs, and
// workers 1/4/16.

// TraceFrame is one in-order slice of a streamed trace: a run of
// events from a single chunk, in that chunk's emission order. Frames
// arrive in chunk order, so the concatenation of all frames equals
// the batch engine's pre-sort trace exactly; a stable time sort of
// the collected events reproduces GenerateTrace bit for bit.
type TraceFrame struct {
	// Chunk is the owning chunk's index.
	Chunk int
	// Events is the frame's slice of the chunk's emissions, at most
	// the batch size handed to StreamTrace. The slice is only valid
	// until the yield callback returns.
	Events []Event
}

// StreamTrace generates the scenario and delivers its events through
// yield as in-order frames without ever materializing the full trace:
// workers generate chunks concurrently, a bounded reorder ring puts
// the finished buffers back into chunk order, and a slow consumer
// backpressures the producers, so peak memory is O(workers × chunk)
// regardless of run length. batch caps the events per frame (≤ 0
// delivers each chunk as one frame); empty chunks produce no frame.
// A yield error or a cancelled ctx stops generation promptly and is
// returned.
func StreamTrace(ctx context.Context, s Scenario, net *Network, seed int64, workers int, p Params, batch int, yield func(TraceFrame) error) error {
	return StreamTraceArena(ctx, nil, s, net, seed, workers, p, batch, yield)
}

// StreamTraceArena is StreamTrace with the chunk buffers pooled in an
// arena (nil allocates fresh — identical frames either way). A
// chunk's buffer recycles the moment its frames have been yielded,
// which the TraceFrame contract already permits: frame slices are
// only valid until the yield callback returns, so the ring's
// steady-state footprint is a handful of slabs cycling through the
// pool instead of one fresh allocation per chunk.
func StreamTraceArena(ctx context.Context, a *Arena, s Scenario, net *Network, seed int64, workers int, p Params, batch int, yield func(TraceFrame) error) error {
	chunks, workers, pd, err := planRun(s, net, workers, p)
	if err != nil {
		return err
	}
	chunkHint := divHint(eventBudget(pd), chunks)
	// The reorder ring: finished chunk buffers wait here until every
	// earlier chunk has been delivered. Twice the worker count keeps
	// workers busy across uneven chunk costs without growing the
	// buffered set beyond O(workers).
	ahead := 2 * workers
	if ahead < 2 {
		ahead = 2
	}
	type slot struct {
		events []Event
		ready  bool
	}
	ring := make([]slot, ahead)
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		frontier int // next chunk to deliver
		next     int // next chunk to claim
		firstErr error
	)
	// Cancellation must wake waiters parked on the cond var.
	stopWake := context.AfterFunc(ctx, func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	defer stopWake()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for firstErr == nil && ctx.Err() == nil && next < chunks && next >= frontier+ahead {
					cond.Wait()
				}
				if firstErr != nil || ctx.Err() != nil || next >= chunks {
					mu.Unlock()
					return
				}
				k := next
				next++
				mu.Unlock()

				buf := a.GetEvents(chunkHint)
				if err := s.Emit(net, chunkRNG(seed, k), pd, k, func(e Event) { buf = append(buf, e) }); err != nil {
					a.PutEvents(buf)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					cond.Broadcast()
					mu.Unlock()
					return
				}

				mu.Lock()
				ring[k%ahead] = slot{events: buf, ready: true}
				// Drain the frontier while it is ready. Delivery happens
				// under mu on purpose: a slow consumer stalls the ring,
				// which stalls the claim loop — that is the memory bound.
				for firstErr == nil && ctx.Err() == nil && frontier < chunks && ring[frontier%ahead].ready {
					sl := &ring[frontier%ahead]
					events := sl.events
					chunk := frontier
					*sl = slot{}
					err := yieldFrames(chunk, events, batch, yield)
					// Frames are only valid until yield returns, so the
					// chunk's buffer is recyclable now — error or not.
					a.PutEvents(events)
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						break
					}
					frontier++
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// yieldFrames slices one chunk's events into batch-sized frames.
func yieldFrames(chunk int, events []Event, batch int, yield func(TraceFrame) error) error {
	if batch <= 0 || batch > len(events) {
		batch = len(events)
	}
	for start := 0; start < len(events); start += batch {
		end := start + batch
		if end > len(events) {
			end = len(events)
		}
		if err := yield(TraceFrame{Chunk: chunk, Events: events[start:end]}); err != nil {
			return err
		}
	}
	return nil
}

// StreamCSR generates the scenario and streams its fixed-length
// aggregation windows through onWindow, in order, each finalized —
// compacted to CSR, builder storage released — the moment every
// chunk whose time span overlaps it has completed. The sealed windows
// are bit-identical to Trace.WindowsCSR over the batch trace with the
// same windowLen and horizon, for any worker count. A horizon ≤ 0
// uses the configured duration. The whole-run aggregate accumulates
// in sharded COO alongside the fold (exactly GenerateMatrix) and is
// returned as CSR with the run stats once the stream completes.
// An onWindow error or a cancelled ctx stops generation at chunk
// granularity and is returned; windows already delivered stay
// delivered.
func StreamCSR(ctx context.Context, s Scenario, net *Network, seed int64, workers int, p Params, windowLen, horizon float64, onWindow func(index int, w SparseWindow) error) (*matrix.CSR, Stats, error) {
	return StreamCSRArena(ctx, nil, s, net, seed, workers, p, windowLen, horizon, onWindow)
}

// StreamCSRArena is StreamCSR with the window compactor's per-window
// shards, the aggregate's worker shards, and the merge output pooled
// in an arena (nil allocates fresh — bit-identical windows either
// way). Window builders recycle at Seal, worker shards after the
// final merge; the sealed window CSRs and the returned aggregate CSR
// are always freshly allocated and the consumer's forever. On an
// error mid-run, builders of never-sealed windows are left to the GC
// rather than reclaimed — safe, since pooling is only an optimization
// and error paths are off the steady-state loop.
func StreamCSRArena(ctx context.Context, a *Arena, s Scenario, net *Network, seed int64, workers int, p Params, windowLen, horizon float64, onWindow func(index int, w SparseWindow) error) (*matrix.CSR, Stats, error) {
	if windowLen <= 0 {
		return nil, Stats{}, fmt.Errorf("netsim: window length must be positive, got %g", windowLen)
	}
	chunks, workers, pd, err := planRun(s, net, workers, p)
	if err != nil {
		return nil, Stats{}, err
	}
	if horizon <= 0 {
		horizon = pd.Duration
	}
	nw := int(math.Ceil(horizon / windowLen))
	if nw < 1 {
		nw = 1
	}
	n := net.Len()

	// Resolve every chunk's conservative window range once, and count
	// how many chunks can touch each window (difference array keeps
	// this O(chunks + windows)). pending[w] hitting zero is the signal
	// that window w is sealed.
	lo := make([]int32, chunks)
	hi := make([]int32, chunks)
	diff := make([]int32, nw+1)
	for k := 0; k < chunks; k++ {
		start, end := chunkSpan(s, net, pd, k)
		wlo := 0
		if w, ok := windowIndex(start, windowLen, horizon, nw); ok {
			wlo = w
		}
		whi := nw - 1
		if w, ok := windowIndex(end, windowLen, horizon, nw); ok {
			whi = w
		}
		if whi < wlo {
			whi = wlo
		}
		lo[k], hi[k] = int32(wlo), int32(whi)
		diff[wlo]++
		diff[whi+1]--
	}
	pending := make([]atomic.Int32, nw)
	run := int32(0)
	for w := 0; w < nw; w++ {
		run += diff[w]
		pending[w].Store(run)
	}

	budget := eventBudget(pd)
	compactor := matrix.NewWindowCompactorArena(a.Matrix(), n, n, nw, divHint(budget, nw))
	shards := make([]*matrix.COO, workers)
	partial := make([]Stats, workers)
	shardHint := divHint(budget, workers)
	for w := range shards {
		shards[w] = matrix.NewCOOIn(a.Matrix(), n, n, shardHint)
	}

	var (
		emitMu   sync.Mutex
		frontier int
		emitErr  error
	)
	// advance seals and delivers every window at the frontier whose
	// pending count has reached zero. Callers hold emitMu, so windows
	// leave in strict index order no matter which worker advances.
	// The first onWindow error is sticky: it leaves the frontier on a
	// window that is already sealed, so advancing again would re-seal
	// it (a panic) — and delivering anything after a consumer error
	// would be wrong anyway. Every later advance returns the original
	// error without touching the compactor.
	advance := func() error {
		if emitErr != nil {
			return emitErr
		}
		for frontier < nw && pending[frontier].Load() == 0 {
			csr, events, dropped := compactor.Seal(frontier)
			start := float64(frontier) * windowLen
			win := SparseWindow{
				Start:   start,
				End:     start + windowLen,
				Matrix:  csr,
				Events:  events,
				Dropped: dropped,
			}
			if err := onWindow(frontier, win); err != nil {
				emitErr = err
				return err
			}
			frontier++
		}
		return nil
	}
	// Windows no chunk can reach seal immediately (an empty leading
	// window of a late-starting scenario streams out at t=0).
	emitMu.Lock()
	err = advance()
	emitMu.Unlock()
	if err != nil {
		releaseShards(shards)
		return nil, Stats{}, err
	}

	err = runChunks(ctx, chunks, workers, seed, func(w, k int, rng *rand.Rand) error {
		acc, st := shards[w], &partial[w]
		if err := s.Emit(net, rng, pd, k, func(e Event) {
			st.Events++
			st.Packets += e.Packets
			i, iok := net.Index(e.Src)
			j, jok := net.Index(e.Dst)
			inAxis := iok && jok
			if inAxis {
				acc.Add(i, j, e.Packets)
			} else {
				st.Dropped += e.Packets
			}
			wi, ok := windowIndex(e.Time, windowLen, horizon, nw)
			if !ok {
				return
			}
			if wi < int(lo[k]) || wi > int(hi[k]) {
				// The scenario emitted outside its declared span: the
				// window may already be sealed and silently missing this
				// event. Fail loudly — this is a ChunkSpanner bug.
				panic(fmt.Sprintf("netsim: scenario %q chunk %d emitted t=%g into window %d outside its declared span [%d,%d]",
					s.Name(), k, e.Time, wi, lo[k], hi[k]))
			}
			if inAxis {
				compactor.Add(wi, i, j, e.Packets)
				compactor.Note(wi, 1, 0)
			} else {
				compactor.Note(wi, 1, e.Packets)
			}
		}); err != nil {
			return err
		}
		// The chunk is done: release its windows and flush any that
		// sealed. Only a decrement that hits zero can move the
		// frontier, so the lock is taken only then.
		sealed := false
		for w := lo[k]; w <= hi[k]; w++ {
			if pending[w].Add(-1) == 0 {
				sealed = true
			}
		}
		if sealed {
			emitMu.Lock()
			err := advance()
			emitMu.Unlock()
			return err
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	// All chunks completed, so every pending count is zero: flush the
	// tail (trailing windows whose chunks finished without a final
	// zero-crossing of their own, plus trailing empties).
	emitMu.Lock()
	err = advance()
	emitMu.Unlock()
	if err != nil {
		releaseShards(shards)
		return nil, Stats{}, err
	}

	merged, err := matrix.MergeCOOArena(ctx, a.Matrix(), shards...)
	if err != nil {
		releaseShards(shards)
		return nil, Stats{}, err
	}
	releaseShards(shards)
	var stats Stats
	for _, st := range partial {
		stats.Events += st.Events
		stats.Packets += st.Packets
		stats.Dropped += st.Dropped
	}
	csr := merged.ToCSR()
	merged.Release()
	return csr, stats, nil
}
