package netsim

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// crawlScenario is a deliberately slow, many-chunk scenario for
// cancellation tests: each chunk sleeps, so a full run takes far
// longer than the test's cancellation point. It is never registered —
// the catalog (and the parity suites iterating it) must not see it.
type crawlScenario struct {
	chunks int
	delay  time.Duration
}

func (c crawlScenario) Name() string        { return "crawl-test" }
func (c crawlScenario) Description() string { return "slow scenario for cancellation tests" }
func (c crawlScenario) Shape() string       { return "one cell, slowly" }

func (c crawlScenario) Chunks(net *Network, p Params) int { return c.chunks }

func (c crawlScenario) Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error {
	time.Sleep(c.delay)
	emit(Event{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1})
	return nil
}

func TestGenerateContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := StandardNetwork()
	if _, err := GenerateTraceContext(ctx, crawlScenario{chunks: 8}, net, 1, 2, Params{}); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateTraceContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := GenerateCSRContext(ctx, crawlScenario{chunks: 8}, net, 1, 2, Params{}); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateCSRContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestGenerateContextCancelMidRun pins the tentpole claim: a long
// generation aborts promptly when its context is cancelled, instead
// of finishing all chunks.
func TestGenerateContextCancelMidRun(t *testing.T) {
	// 400 chunks × 5ms on 2 workers ≈ 1s uncancelled; the context
	// dies after ~30ms.
	s := crawlScenario{chunks: 400, delay: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := GenerateTraceContext(ctx, s, StandardNetwork(), 1, 2, Params{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled run still took %v; cancellation is not reaching the worker loop", elapsed)
	}
}

// TestGenerateContextBackgroundUnchanged: the context-free entry
// points still generate the exact traffic they always did (they are
// the Background delegates).
func TestGenerateContextBackgroundUnchanged(t *testing.T) {
	s, ok := LookupScenario("scan")
	if !ok {
		t.Fatal("catalog missing scan")
	}
	net := StandardNetwork()
	want, err := GenerateTrace(s, net, 3, 2, Params{Duration: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateTraceContext(context.Background(), s, net, 3, 2, Params{Duration: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("ctx variant generated %d events, plain %d", len(got), len(want))
	}
}

func TestWindowsCSRContextCancelled(t *testing.T) {
	s, _ := LookupScenario("background")
	net := StandardNetwork()
	trace, err := GenerateTrace(s, net, 1, 2, Params{Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := trace.WindowsCSRContext(ctx, net, 2, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("WindowsCSRContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	// And a live context still windows normally.
	windows, err := trace.WindowsCSRContext(context.Background(), net, 2, 0)
	if err != nil || len(windows) == 0 {
		t.Errorf("live-context windowing failed: %v (%d windows)", err, len(windows))
	}
}
