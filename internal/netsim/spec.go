package netsim

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// The declarative spec layer: a small expression grammar that builds
// combinator trees (compose.go) out of catalog names, so arbitrary
// scenario mixtures are definable without writing Go — on the twsim
// and twmodule command lines, in lesson-authoring scripts, or
// registered into the catalog at runtime.
//
// Grammar (whitespace is free between tokens):
//
//	expr     := term [ '@' duration ]
//	term     := name
//	         | 'overlay'  '(' expr ',' expr {',' expr} ')'
//	         | 'sequence' '(' expr ',' expr {',' expr} ')'
//	         | 'dilate'   '(' expr ',' number ')'
//	         | 'amplify'  '(' expr ',' integer ')'
//	         | 'relabel'  '(' expr ',' name '=' name {',' name '=' name} ')'
//	duration := number [ 's' ]
//	name     := letter { letter | digit | '_' | '-' }
//
// A bare name resolves against the scenario catalog at parse time, so
// specs can reference both built-ins and previously registered
// composites. expr@10s pins the sub-expression's duration to ten
// seconds; directly inside sequence(...) it also sizes the step's
// slot, elsewhere it wraps the expression with Timed.

// ParseSpec parses a composition expression into a runnable Scenario.
func ParseSpec(src string) (Scenario, error) {
	p := &specParser{src: src}
	p.skipSpace()
	s, _, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q after expression", p.rest())
	}
	return s, nil
}

// SpecString renders a scenario as its canonical spec expression —
// the normal form of the composition algebra. For any scenario whose
// leaves are registered catalog entries, ParseSpec(SpecString(s))
// builds an equivalent scenario and the rendering is stable across
// the round trip:
//
//	SpecString(ParseSpec(SpecString(s))) == SpecString(s)
//
// which is what makes it the canonical cache key of the api layer:
// two requests naming the same mixture — however they spelled it —
// normalize to one key. Normalization also collapses redundant
// nesting the grammar cannot express (a Timed directly inside a
// Timed keeps only the inner, binding pin). Scenarios outside the
// combinator algebra render as their catalog name.
func SpecString(s Scenario) string {
	switch v := s.(type) {
	case overlayScenario:
		parts := make([]string, len(v.components))
		for i, c := range v.components {
			parts[i] = SpecString(c)
		}
		return "overlay(" + strings.Join(parts, ",") + ")"
	case sequenceScenario:
		parts := make([]string, len(v.steps))
		for i, st := range v.steps {
			parts[i] = SpecString(st.Scenario)
			if st.Duration > 0 {
				parts[i] += "@" + formatSeconds(st.Duration)
			}
		}
		return "sequence(" + strings.Join(parts, ",") + ")"
	case dilateScenario:
		return "dilate(" + SpecString(v.inner) + "," + formatFloat(v.factor) + ")"
	case amplifyScenario:
		return "amplify(" + SpecString(v.inner) + "," + strconv.Itoa(v.n) + ")"
	case relabelScenario:
		pairs := make([]string, 0, len(v.mapping))
		for from, to := range v.mapping {
			pairs = append(pairs, from+"="+to)
		}
		sort.Strings(pairs)
		return "relabel(" + SpecString(v.inner) + "," + strings.Join(pairs, ",") + ")"
	case timedScenario:
		if inner, ok := v.inner.(timedScenario); ok {
			// The inner pin wins (it overwrites Duration last), and
			// the grammar has no way to spell a double pin anyway.
			return SpecString(inner)
		}
		return SpecString(v.inner) + "@" + formatSeconds(v.dur)
	case namedScenario:
		return v.name
	default:
		return s.Name()
	}
}

// RegisterSpec parses a composition expression and registers the
// result in the scenario catalog under the given name, so CLIs and
// the bridge can run the mixture like any built-in. The description
// may be empty (the composed description is kept).
func RegisterSpec(name, desc, src string) (Scenario, error) {
	s, err := ParseSpec(src)
	if err != nil {
		return nil, err
	}
	named := Named(s, name, desc)
	if err := Register(named); err != nil {
		return nil, err
	}
	return named, nil
}

// specParser is a recursive-descent parser over the spec grammar.
type specParser struct {
	src string
	pos int
}

func (p *specParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("netsim: spec at byte %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *specParser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "…"
	}
	return r
}

func (p *specParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// peek returns the next byte without consuming it, 0 at end of input.
func (p *specParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// accept consumes ch if it is next, reporting whether it did.
func (p *specParser) accept(ch byte) bool {
	p.skipSpace()
	if p.peek() == ch {
		p.pos++
		return true
	}
	return false
}

// expect consumes ch or fails.
func (p *specParser) expect(ch byte) error {
	if !p.accept(ch) {
		return p.errorf("expected %q, found %q", string(ch), p.rest())
	}
	return nil
}

// ident consumes a name token.
func (p *specParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errorf("expected a name, found %q", p.rest())
	}
	return p.src[start:p.pos], nil
}

// number consumes a positive decimal number.
func (p *specParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '.' || unicode.IsDigit(rune(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, p.errorf("expected a number, found %q", p.rest())
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, p.errorf("bad number %q", p.src[start:p.pos])
	}
	return f, nil
}

// duration consumes a number with an optional trailing 's' unit.
func (p *specParser) duration() (float64, error) {
	f, err := p.number()
	if err != nil {
		return 0, err
	}
	if p.peek() == 's' {
		p.pos++
	}
	if f <= 0 {
		return 0, p.errorf("duration must be positive, got %g", f)
	}
	return f, nil
}

// parseExpr parses one expression with an optional @duration suffix.
// It returns the scenario and, when an explicit duration annotation
// was present, its value (for sequence slot sizing); dur is 0
// otherwise.
func (p *specParser) parseExpr() (s Scenario, dur float64, err error) {
	s, err = p.parseTerm()
	if err != nil {
		return nil, 0, err
	}
	if p.accept('@') {
		dur, err = p.duration()
		if err != nil {
			return nil, 0, err
		}
		return Timed(s, dur), dur, nil
	}
	return s, 0, nil
}

// parseTerm parses a catalog name or a combinator call.
func (p *specParser) parseTerm() (Scenario, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '(' {
		s, ok := LookupScenario(name)
		if !ok {
			return nil, p.errorf("unknown scenario %q (run twsim -list for the catalog)", name)
		}
		return s, nil
	}
	p.pos++ // consume '('
	switch name {
	case "overlay":
		return p.parseVariadic(name, Overlay)
	case "sequence":
		return p.parseSequence()
	case "dilate":
		return p.parseDilate()
	case "amplify":
		return p.parseAmplify()
	case "relabel":
		return p.parseRelabel()
	default:
		return nil, p.errorf("unknown combinator %q (want overlay, sequence, dilate, amplify, or relabel)", name)
	}
}

// parseVariadic parses '(' already consumed: expr {',' expr} ')' with
// at least two components, handing them to the combinator.
func (p *specParser) parseVariadic(name string, combine func(...Scenario) Scenario) (Scenario, error) {
	var components []Scenario
	for {
		s, _, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		components = append(components, s)
		if p.accept(',') {
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if len(components) < 2 {
		return nil, p.errorf("%s needs at least two components, got %d", name, len(components))
	}
	return combine(components...), nil
}

// parseSequence parses sequence steps, turning @duration annotations
// on direct children into slot durations.
func (p *specParser) parseSequence() (Scenario, error) {
	var steps []SeqStep
	for {
		s, dur, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// A timed direct child sizes the slot; the Timed wrapper would
		// pin the same duration redundantly, so unwrap it.
		if dur > 0 {
			if t, ok := s.(timedScenario); ok {
				s = t.inner
			}
		}
		steps = append(steps, SeqStep{Scenario: s, Duration: dur})
		if p.accept(',') {
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if len(steps) < 2 {
		return nil, p.errorf("sequence needs at least two components, got %d", len(steps))
	}
	return SequenceSteps(steps...), nil
}

// parseDilate parses dilate(expr, factor).
func (p *specParser) parseDilate() (Scenario, error) {
	s, _, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(','); err != nil {
		return nil, err
	}
	f, err := p.number()
	if err != nil {
		return nil, err
	}
	if f <= 0 {
		return nil, p.errorf("dilate factor must be positive, got %g", f)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return Dilate(s, f), nil
}

// parseAmplify parses amplify(expr, n).
func (p *specParser) parseAmplify() (Scenario, error) {
	s, _, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(','); err != nil {
		return nil, err
	}
	f, err := p.number()
	if err != nil {
		return nil, err
	}
	n := int(f)
	if float64(n) != f || n < 1 {
		return nil, p.errorf("amplify count must be a positive integer, got %g", f)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return Amplify(s, n), nil
}

// parseRelabel parses relabel(expr, A=B {, C=D}).
func (p *specParser) parseRelabel() (Scenario, error) {
	s, _, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	mapping := map[string]string{}
	for p.accept(',') {
		from, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect('='); err != nil {
			return nil, err
		}
		to, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, dup := mapping[from]; dup {
			return nil, p.errorf("relabel maps %q twice", from)
		}
		mapping[from] = to
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if len(mapping) == 0 {
		return nil, p.errorf("relabel needs at least one host=host pair")
	}
	return Relabel(s, mapping), nil
}

// ErrSpecNotFound marks a LoadSpec argument that was neither a
// catalog name nor a spec file present on disk. Callers branch on it
// with errors.Is to tell "you named something that does not exist"
// (a user typo) apart from a spec that exists but does not parse.
var ErrSpecNotFound = errors.New("spec file not found")

// LoadSpec resolves a -spec CLI argument. Text containing spec
// syntax (parentheses, '@', '=', commas) is parsed directly as an
// expression; a bare catalog name resolves to its scenario; anything
// else is treated as a path to a spec file, whose contents (sans
// surrounding whitespace) are parsed. readFile abstracts the
// filesystem so callers outside CLIs can pass nil to forbid file
// lookups.
//
// The error paths stay distinguishable: a missing file wraps
// ErrSpecNotFound (and the underlying fs.ErrNotExist), any other
// read failure wraps the I/O error, and a file that reads but does
// not parse wraps the parse error — all three carry the file path.
func LoadSpec(arg string, readFile func(string) ([]byte, error)) (Scenario, error) {
	if readFile == nil || strings.ContainsAny(arg, "()@=,") {
		return ParseSpec(arg)
	}
	if _, ok := LookupScenario(strings.TrimSpace(arg)); ok {
		return ParseSpec(arg)
	}
	data, err := readFile(arg)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("netsim: spec %q is neither a catalog name nor a readable spec file: %w: %w",
			arg, ErrSpecNotFound, err)
	case err != nil:
		return nil, fmt.Errorf("netsim: read spec file %q: %w", arg, err)
	}
	s, err := ParseSpec(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("netsim: spec file %q: %w", arg, err)
	}
	return s, nil
}
