package netsim

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// primitives returns the built-in catalog entries the random spec
// trees draw their leaves from.
func primitives(t *testing.T) []Scenario {
	t.Helper()
	names := []string{"background", "scan", "attack", "ddos", "worm", "exfil", "flashcrowd", "beacon"}
	out := make([]Scenario, len(names))
	for i, name := range names {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		out[i] = s
	}
	return out
}

// randomScenario builds a random combinator tree of bounded depth.
// Timed is never generated as a direct sequence child: the grammar
// spells that position as a slot duration, so the two constructions
// share one canonical form (SequenceSteps), which the generator
// produces directly.
func randomScenario(r *rand.Rand, prims []Scenario, depth int) Scenario {
	if depth <= 0 || r.Intn(3) == 0 {
		return prims[r.Intn(len(prims))]
	}
	durations := []float64{2, 2.5, 5, 10, 12.5}
	factors := []float64{0.25, 0.5, 2, 2.5, 4}
	switch r.Intn(6) {
	case 0:
		n := 2 + r.Intn(2)
		parts := make([]Scenario, n)
		for i := range parts {
			parts[i] = randomScenario(r, prims, depth-1)
		}
		return Overlay(parts...)
	case 1:
		n := 2 + r.Intn(2)
		steps := make([]SeqStep, n)
		for i := range steps {
			inner := randomScenario(r, prims, depth-1)
			for {
				if _, timed := inner.(timedScenario); !timed {
					break
				}
				inner = inner.(timedScenario).inner
			}
			steps[i] = SeqStep{Scenario: inner}
			if r.Intn(2) == 0 {
				steps[i].Duration = durations[r.Intn(len(durations))]
			}
		}
		return SequenceSteps(steps...)
	case 2:
		return Dilate(randomScenario(r, prims, depth-1), factors[r.Intn(len(factors))])
	case 3:
		return Amplify(randomScenario(r, prims, depth-1), 1+r.Intn(4))
	case 4:
		mappings := []map[string]string{
			{"ADV1": "ADV2", "ADV2": "ADV1"},
			{"WS1": "WS3", "WS3": "WS1"},
			{"EXT1": "EXT2", "EXT2": "EXT1"},
		}
		return Relabel(randomScenario(r, prims, depth-1), mappings[r.Intn(len(mappings))])
	default:
		return Timed(randomScenario(r, prims, depth-1), durations[r.Intn(len(durations))])
	}
}

// TestSpecStringRoundTripStability is the canonical-cache-key
// property: for random combinator trees over catalog leaves,
// SpecString parses back and re-renders to the identical string —
// SpecString ∘ ParseSpec is the identity on canonical forms.
func TestSpecStringRoundTripStability(t *testing.T) {
	prims := primitives(t)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := randomScenario(r, prims, 3)
		spec := SpecString(s)
		parsed, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("tree %d: SpecString %q does not parse: %v", i, spec, err)
		}
		if again := SpecString(parsed); again != spec {
			t.Fatalf("tree %d: round trip not stable:\n  first:  %q\n  second: %q", i, spec, again)
		}
	}
}

// TestSpecStringRoundTripTraffic checks semantic equivalence on a
// sample of random trees: the reparsed scenario generates the exact
// same aggregate matrix.
func TestSpecStringRoundTripTraffic(t *testing.T) {
	prims := primitives(t)
	r := rand.New(rand.NewSource(11))
	net := StandardNetwork()
	// Long enough that any combination of explicitly timed sequence
	// steps (≤ 3 × 12.5s) still fits its run.
	p := Params{Duration: 45}
	for i := 0; i < 12; i++ {
		s := randomScenario(r, prims, 2)
		spec := SpecString(s)
		parsed, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("tree %d: %q does not parse: %v", i, spec, err)
		}
		want, _, err := GenerateCSR(s, net, 5, 2, p)
		if err != nil {
			t.Fatalf("tree %d: original %q: %v", i, spec, err)
		}
		got, _, err := GenerateCSR(parsed, net, 5, 2, p)
		if err != nil {
			t.Fatalf("tree %d: reparsed %q: %v", i, spec, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tree %d: reparsed %q generates different traffic", i, spec)
		}
	}
}

// TestSpecStringNormalizesNestedTimed: a Timed directly inside a
// Timed has no spelling in the grammar; the canonical form keeps the
// inner, binding pin.
func TestSpecStringNormalizesNestedTimed(t *testing.T) {
	scan, _ := LookupScenario("scan")
	got := SpecString(Timed(Timed(scan, 10), 5))
	if got != "scan@10s" {
		t.Errorf("nested Timed renders %q, want %q", got, "scan@10s")
	}
	if _, err := ParseSpec(got); err != nil {
		t.Errorf("normalized form %q does not parse: %v", got, err)
	}
}

// TestSpecStringRegisteredName: a registered composite renders as its
// catalog handle, so the canonical key of a named mixture is the
// name students see.
func TestSpecStringRegisteredName(t *testing.T) {
	s, err := RegisterSpec("specstring-test-mix", "", "overlay(background, scan)")
	if err != nil {
		t.Fatal(err)
	}
	defer delete(registry, "specstring-test-mix")
	if got := SpecString(s); got != "specstring-test-mix" {
		t.Errorf("SpecString of registered composite = %q", got)
	}
	parsed, err := ParseSpec(SpecString(s))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Description() != s.Description() {
		t.Error("registered name did not resolve back to the registered composite")
	}
}

// TestLoadSpecErrorPaths pins the error taxonomy: missing files wrap
// ErrSpecNotFound (and fs.ErrNotExist), unparseable files wrap the
// parse error, and both carry the path.
func TestLoadSpecErrorPaths(t *testing.T) {
	dir := t.TempDir()
	broken := filepath.Join(dir, "broken.spec")
	if err := os.WriteFile(broken, []byte("overlay(background"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.spec")
	failRead := func(string) ([]byte, error) { return nil, fmt.Errorf("disk on fire") }

	for _, tc := range []struct {
		name     string
		arg      string
		readFile func(string) ([]byte, error)
		notFound bool   // errors.Is(err, ErrSpecNotFound)
		contains string // substring the message must carry
	}{
		{"missing file", missing, os.ReadFile, true, "missing.spec"},
		{"parse error in file", broken, os.ReadFile, false, "broken.spec"},
		{"non-notfound read error", "weird.spec", failRead, false, "disk on fire"},
		{"bare unknown name, no fs", "nope", nil, false, "nope"},
	} {
		_, err := LoadSpec(tc.arg, tc.readFile)
		if err == nil {
			t.Errorf("%s: LoadSpec accepted", tc.name)
			continue
		}
		if got := errors.Is(err, ErrSpecNotFound); got != tc.notFound {
			t.Errorf("%s: errors.Is(err, ErrSpecNotFound) = %v, want %v (err %q)", tc.name, got, tc.notFound, err)
		}
		if tc.notFound != errors.Is(err, fs.ErrNotExist) {
			t.Errorf("%s: fs.ErrNotExist mismatch for %q", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.contains) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.contains)
		}
	}

	// The parse-error path wraps the spec parse failure itself, so a
	// caller can still see where in the file the grammar broke.
	_, err := LoadSpec(broken, os.ReadFile)
	if err == nil || !strings.Contains(err.Error(), "spec at byte") {
		t.Errorf("file parse error %q does not wrap the parser position", err)
	}
}
