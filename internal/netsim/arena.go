package netsim

import "repro/internal/matrix"

// The generation-side arena: one pooling scope for everything a
// request's hot path builds and discards — chunk event buffers, the
// concatenated trace slab, per-worker and per-window COO shards, and
// the merge output. It wraps the matrix layer's triple arena and adds
// an event-slab pool of its own, because the two element types
// dominate a request's garbage in roughly equal measure.
//
// Every generation entry point has an *Arena-taking variant
// (GenerateTraceArena, GenerateCSRArena, StreamTraceArena,
// StreamCSRArena, Trace.WindowsCSRArena, Trace.SparseMatrixArena);
// the historical names delegate with a nil arena, and a nil arena
// means "allocate fresh" everywhere — the pooled and pool-free paths
// produce bit-identical output by construction, pinned by the parity
// tests in arena_test.go and the api layer's pooled-vs-reference
// property suite.
//
// Slab requests are pre-sized from the run's event budget
// (duration × rate × scale after defaults), divided across chunks,
// workers, or windows as appropriate, so steady-state serving hits
// the free-lists instead of growing slices from nil. The ownership
// rules are the matrix arena's (see matrix/arena.go and DESIGN.md):
// only builder storage is pooled; CSR outputs are always fresh and
// consumer-owned. Pooled event slabs may retain host-name string
// pointers from earlier runs until overwritten; those strings alias
// long-lived network labels, so the retention is bounded and benign.

// DefaultEventElems bounds the arena's retained event storage:
// enough for the documented serving workloads' trace slab plus their
// chunk buffers, while keeping the pooled footprint of one service
// process firmly bounded.
const DefaultEventElems = 4 << 20

// maxSlabHint caps any single pre-size request. Larger asks still
// work — append growth takes over past the hint — but pre-allocating
// beyond this wastes arena retention on pathological budgets.
const maxSlabHint = 4 << 20

// Arena pools the generation pipeline's builder storage. One Arena
// per service instance, shared by every request; all methods are safe
// for concurrent use and nil-safe (a nil *Arena allocates fresh).
type Arena struct {
	mat    *matrix.Arena
	events *matrix.SlabPool[Event]
}

// ArenaStats snapshots both pools' counters.
type ArenaStats struct {
	// Entries is the COO triple pool (shards, merge outputs).
	Entries matrix.PoolStats
	// Events is the event-slab pool (chunk buffers, trace slabs).
	Events matrix.PoolStats
}

// NewArena builds an arena with the default retention bounds.
func NewArena() *Arena {
	return &Arena{
		mat:    matrix.NewArena(),
		events: matrix.NewSlabPool[Event](DefaultEventElems),
	}
}

// Matrix exposes the triple arena for the matrix-layer calls.
// nil-safe: a nil Arena has a nil matrix arena.
func (a *Arena) Matrix() *matrix.Arena {
	if a == nil {
		return nil
	}
	return a.mat
}

// GetEvents takes a zero-length event slab with capacity ≥ c (best
// effort). For a nil arena it returns nil — exactly the `var buf
// []Event` the pool-free path starts from, so append semantics are
// identical either way.
func (a *Arena) GetEvents(c int) []Event {
	if a == nil {
		return nil
	}
	return a.events.Get(c)
}

// PutEvents files an event slab back. The caller asserts nothing
// aliases it. nil-safe.
func (a *Arena) PutEvents(s []Event) {
	if a == nil {
		return
	}
	a.events.Put(s)
}

// ReleaseTrace files a trace's backing slab back into the arena.
// Call it only once every view of the trace — sub-slices, frames,
// windows built from it — is provably dead. nil-safe, and safe on
// traces that were never arena-backed (their slabs simply join the
// pool).
func (a *Arena) ReleaseTrace(t Trace) {
	a.PutEvents([]Event(t))
}

// Stats snapshots the arena's pool counters. nil-safe.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return ArenaStats{Entries: a.mat.Stats(), Events: a.events.Stats()}
}

// eventBudget estimates how many events a run will emit: the
// validated request budget the api layer already enforces
// (duration × rate × scale after defaults). Scripted scenarios that
// ignore Rate overestimate, which only means extra slab headroom.
func eventBudget(pd Params) int {
	b := pd.Duration * pd.Rate * float64(pd.Scale)
	if !(b > 0) {
		return 0
	}
	if b > float64(maxSlabHint) {
		return maxSlabHint
	}
	return int(b)
}

// divHint splits an event budget across parts (chunks, workers,
// windows) to pre-size each part's slab request.
func divHint(budget, parts int) int {
	if parts < 1 {
		parts = 1
	}
	h := budget / parts
	if h > maxSlabHint {
		h = maxSlabHint
	}
	return h
}

// releaseShards files every shard's builder storage back. Safe on
// nil-arena shards (no-op puts).
func releaseShards(shards []*matrix.COO) {
	for _, sh := range shards {
		sh.Release()
	}
}
