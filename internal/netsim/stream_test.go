package netsim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// batchWindows computes the reference spatial-temporal view the
// streaming engine must reproduce bit for bit: the batch trace split
// by WindowsCSR over the full configured duration.
func batchWindows(t *testing.T, s Scenario, net *Network, seed int64, p Params, windowLen float64) []SparseWindow {
	t.Helper()
	trace, err := GenerateTrace(s, net, seed, 4, p)
	if err != nil {
		t.Fatalf("GenerateTrace(%s): %v", SpecString(s), err)
	}
	wins, err := trace.WindowsCSR(net, windowLen, p.withDefaults().Duration)
	if err != nil {
		t.Fatalf("WindowsCSR(%s): %v", SpecString(s), err)
	}
	return wins
}

// collectStream runs StreamCSR and gathers the delivered windows,
// asserting in-order delivery as it goes.
func collectStream(t *testing.T, s Scenario, net *Network, seed int64, workers int, p Params, windowLen float64) []SparseWindow {
	t.Helper()
	var got []SparseWindow
	csr, stats, err := StreamCSR(context.Background(), s, net, seed, workers, p, windowLen, 0, func(k int, w SparseWindow) error {
		if k != len(got) {
			t.Fatalf("%s: window %d delivered out of order (expected %d)", SpecString(s), k, len(got))
		}
		got = append(got, w)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamCSR(%s): %v", SpecString(s), err)
	}

	// The aggregate and stats must match the batch sparse path exactly.
	wantCSR, wantStats, err := GenerateCSR(s, net, seed, 4, p)
	if err != nil {
		t.Fatalf("GenerateCSR(%s): %v", SpecString(s), err)
	}
	if !reflect.DeepEqual(csr, wantCSR) {
		t.Errorf("%s: streamed aggregate CSR differs from GenerateCSR", SpecString(s))
	}
	if stats != wantStats {
		t.Errorf("%s: streamed stats = %+v, want %+v", SpecString(s), stats, wantStats)
	}
	return got
}

// compareWindows asserts bit-identity between streamed and batch
// windows: same count, same bounds, same tallies, DeepEqual CSRs.
func compareWindows(t *testing.T, label string, got, want []SparseWindow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d streamed windows, want %d", label, len(got), len(want))
	}
	for k := range want {
		g, w := got[k], want[k]
		if g.Start != w.Start || g.End != w.End {
			t.Errorf("%s window %d: bounds [%g,%g), want [%g,%g)", label, k, g.Start, g.End, w.Start, w.End)
		}
		if g.Events != w.Events || g.Dropped != w.Dropped {
			t.Errorf("%s window %d: events/dropped = %d/%d, want %d/%d", label, k, g.Events, g.Dropped, w.Events, w.Dropped)
		}
		if !reflect.DeepEqual(g.Matrix, w.Matrix) {
			t.Errorf("%s window %d: streamed CSR not bit-identical to batch", label, k)
		}
	}
}

// TestStreamCSRCatalogParity is the tentpole contract over the whole
// catalog: for every entry, for workers 1, 4 and 16, and for three
// window lengths (including one that does not divide the duration),
// the streamed windows are bit-identical to the batch WindowsCSR
// view and the aggregate matches GenerateCSR.
func TestStreamCSRCatalogParity(t *testing.T) {
	net := StandardNetwork()
	p := Params{Duration: 20, Rate: 6}
	for _, s := range Scenarios() {
		for _, workers := range []int{1, 4, 16} {
			for _, windowLen := range []float64{1, 2.5, 7} {
				want := batchWindows(t, s, net, 42, p, windowLen)
				got := collectStream(t, s, net, 42, workers, p, windowLen)
				label := s.Name()
				compareWindows(t, label, got, want)
				if t.Failed() {
					t.Fatalf("parity broken at %s workers=%d window=%g", label, workers, windowLen)
				}
			}
		}
	}
}

// TestStreamCSRScaledNetworkParity repeats the parity check on a
// larger axis, where foreign-host drops and busier windows exercise
// the compactor harder.
func TestStreamCSRScaledNetworkParity(t *testing.T) {
	net := ScaledNetwork(64)
	p := Params{Duration: 12, Rate: 40}
	for _, name := range []string{"background", "ddos", "worm", "flashcrowd"} {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		for _, workers := range []int{1, 4, 16} {
			want := batchWindows(t, s, net, 99, p, 3)
			got := collectStream(t, s, net, 99, workers, p, 3)
			compareWindows(t, name, got, want)
		}
	}
}

// TestStreamCSRComposedParity runs the parity property over random
// combinator trees: streaming must agree with batch for arbitrary
// overlays, sequences, dilations, amplifications, relabelings and
// truncations of catalog entries — the shapes that exercise the
// ChunkSpan forwarding in compose.go.
func TestStreamCSRComposedParity(t *testing.T) {
	prims := primitives(t)
	r := rand.New(rand.NewSource(1234))
	net := StandardNetwork()
	p := Params{Duration: 25, Rate: 5}
	workerSets := []int{1, 4, 16}
	for i := 0; i < 30; i++ {
		s := randomScenario(r, prims, 3)
		windowLen := []float64{2, 2.5, 5}[i%3]
		// Some random trees are invalid configurations (a sequence
		// whose timed steps overrun the duration). Batch rejects them;
		// the stream must reject them identically, not half-run.
		if _, batchErr := GenerateTrace(s, net, int64(i), 4, p); batchErr != nil {
			_, _, streamErr := StreamCSR(context.Background(), s, net, int64(i), 4, p, windowLen, 0,
				func(int, SparseWindow) error { return nil })
			if streamErr == nil || streamErr.Error() != batchErr.Error() {
				t.Fatalf("tree %d (%s): batch rejects with %q, stream says %v", i, SpecString(s), batchErr, streamErr)
			}
			continue
		}
		want := batchWindows(t, s, net, int64(i), p, windowLen)
		got := collectStream(t, s, net, int64(i), workerSets[i%len(workerSets)], p, windowLen)
		compareWindows(t, SpecString(s), got, want)
		if t.Failed() {
			t.Fatalf("composed parity broken at tree %d: %s", i, SpecString(s))
		}
	}
}

// TestStreamTraceParity pins the raw event stream: for catalog
// entries across worker counts and frame batch sizes, frames arrive
// in chunk order, respect the batch cap, and concatenate+sort to the
// exact batch trace.
func TestStreamTraceParity(t *testing.T) {
	net := StandardNetwork()
	p := Params{Duration: 15, Rate: 8}
	for _, name := range []string{"background", "scan", "ddos", "exfil"} {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		want, err := GenerateTrace(s, net, 7, 4, p)
		if err != nil {
			t.Fatalf("GenerateTrace(%s): %v", name, err)
		}
		for _, workers := range []int{1, 4, 16} {
			for _, batch := range []int{0, 1, 7} {
				var got Trace
				lastChunk := -1
				err := StreamTrace(context.Background(), s, net, 7, workers, p, batch, func(f TraceFrame) error {
					if f.Chunk < lastChunk {
						t.Fatalf("%s: frame for chunk %d after chunk %d", name, f.Chunk, lastChunk)
					}
					lastChunk = f.Chunk
					if len(f.Events) == 0 {
						t.Fatalf("%s: empty frame for chunk %d", name, f.Chunk)
					}
					if batch > 0 && len(f.Events) > batch {
						t.Fatalf("%s: frame of %d events exceeds batch %d", name, len(f.Events), batch)
					}
					got = append(got, f.Events...)
					return nil
				})
				if err != nil {
					t.Fatalf("StreamTrace(%s): %v", name, err)
				}
				got.Sort()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s workers=%d batch=%d: streamed trace differs from batch", name, workers, batch)
				}
			}
		}
	}
}

// TestChunkSpanCovers is the safety property under every declared
// span: a chunk's real emissions never leave its reported bounds.
// An under-reported span is the one bug class that would silently
// drop traffic from sealed windows, so it gets its own direct check
// in addition to the end-to-end parity tests. Random combinator
// trees are included to exercise the span arithmetic in compose.go.
func TestChunkSpanCovers(t *testing.T) {
	prims := primitives(t)
	r := rand.New(rand.NewSource(5))
	net := StandardNetwork()
	subjects := make([]Scenario, 0, 28)
	subjects = append(subjects, Scenarios()...)
	for i := 0; i < 20; i++ {
		subjects = append(subjects, randomScenario(r, prims, 3))
	}
	p := Params{Duration: 18, Rate: 6}
	for _, s := range subjects {
		sp, ok := s.(ChunkSpanner)
		if !ok {
			continue
		}
		_, _, pd, err := planRun(s, net, 1, p)
		if err != nil {
			// Invalid random configuration; nothing to span.
			continue
		}
		chunks := s.Chunks(net, pd)
		for k := 0; k < chunks; k++ {
			start, end := sp.ChunkSpan(net, pd, k)
			if math.IsNaN(start) || math.IsNaN(end) {
				t.Fatalf("%s chunk %d: NaN span [%g,%g]", SpecString(s), k, start, end)
			}
			err := s.Emit(net, chunkRNG(11, k), pd, k, func(e Event) {
				if e.Time < start || e.Time > end {
					t.Errorf("%s chunk %d: event at t=%g outside declared span [%g,%g]",
						SpecString(s), k, e.Time, start, end)
				}
			})
			if err != nil {
				// Invalid configuration (e.g. a sequence overrunning its
				// duration); the engine rejects it before spans matter.
				break
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestStreamCSRFirstWindowBeforeCompletion pins the point of the
// whole exercise: for a time-local scenario the first window is
// delivered while most chunks are still outstanding, not after the
// run completes. Duration 600 gives 600 one-second chunks; the first
// 10-second window needs only the first ~11 of them.
func TestStreamCSRFirstWindowBeforeCompletion(t *testing.T) {
	s, ok := LookupScenario("background")
	if !ok {
		t.Fatal("catalog missing background")
	}
	net := StandardNetwork()
	p := Params{Duration: 600, Rate: 2}
	firstAt := -1
	windows := 0
	_, _, err := StreamCSR(context.Background(), s, net, 3, 4, p, 10, 0, func(k int, w SparseWindow) error {
		if windows == 0 {
			firstAt = k
		}
		windows++
		return nil
	})
	if err != nil {
		t.Fatalf("StreamCSR: %v", err)
	}
	if firstAt != 0 || windows != 60 {
		t.Fatalf("first window index %d, %d windows delivered; want 0 and 60", firstAt, windows)
	}
	// Re-run and stop at the first window: if sealing waited for the
	// whole run this would do 600 chunks of work; bound it instead by
	// counting chunk RNG draws is intrusive, so assert on wall-clock
	// asymmetry: aborting after window 0 must be much cheaper than the
	// full run. The CI benchmark (stream_bench_test.go) measures the
	// real latency ratio; here we only pin the early-exit plumbing.
	stop := errors.New("stop")
	_, _, err = StreamCSR(context.Background(), s, net, 3, 4, p, 10, 0, func(k int, w SparseWindow) error {
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("StreamCSR after onWindow error = %v, want stop", err)
	}
}

// TestStreamCSRCancellation pins prompt mid-stream cancellation: a
// context cancelled after the first window stops generation at chunk
// granularity, returns the context error, and leaks no goroutines.
func TestStreamCSRCancellation(t *testing.T) {
	s, ok := LookupScenario("background")
	if !ok {
		t.Fatal("catalog missing background")
	}
	net := StandardNetwork()
	p := Params{Duration: 3600, Rate: 2}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	windows := 0
	start := time.Now()
	_, _, err := StreamCSR(ctx, s, net, 9, 4, p, 5, 0, func(k int, w SparseWindow) error {
		windows++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamCSR after cancel = %v, want context.Canceled", err)
	}
	if windows == 0 {
		t.Fatal("cancelled before any window was delivered")
	}
	if windows >= 720 {
		t.Fatalf("all %d windows delivered despite cancellation", windows)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// Worker goroutines must drain. NumGoroutine is noisy, so retry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamTraceCancellation pins the same for the raw event stream,
// including waking workers parked on the reorder ring's cond var.
func TestStreamTraceCancellation(t *testing.T) {
	s, ok := LookupScenario("background")
	if !ok {
		t.Fatal("catalog missing background")
	}
	net := StandardNetwork()
	p := Params{Duration: 3600, Rate: 2}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var frames atomic.Int64
	err := StreamTrace(ctx, s, net, 9, 8, p, 0, func(f TraceFrame) error {
		if frames.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamTrace after cancel = %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamTraceYieldError pins that a consumer error aborts the
// stream and is returned verbatim.
func TestStreamTraceYieldError(t *testing.T) {
	s, ok := LookupScenario("background")
	if !ok {
		t.Fatal("catalog missing background")
	}
	boom := errors.New("boom")
	err := StreamTrace(context.Background(), s, StandardNetwork(), 1, 4, Params{Duration: 100}, 0, func(f TraceFrame) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("StreamTrace = %v, want boom", err)
	}
}

// TestStreamCSRInvalidWindow pins the argument taxonomy: a
// non-positive window length is rejected before any generation.
func TestStreamCSRInvalidWindow(t *testing.T) {
	s, ok := LookupScenario("background")
	if !ok {
		t.Fatal("catalog missing background")
	}
	for _, bad := range []float64{0, -1} {
		_, _, err := StreamCSR(context.Background(), s, StandardNetwork(), 1, 1, Params{}, bad, 0, func(int, SparseWindow) error { return nil })
		if err == nil {
			t.Fatalf("StreamCSR accepted window length %g", bad)
		}
	}
}
