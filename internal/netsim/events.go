package netsim

import (
	"sort"

	"repro/internal/matrix"
)

// Event is one observed flow record: src sent packets to dst at a
// point in time. Events are the simulated counterpart of the
// network sensor feeds the paper's GraphBLAS references aggregate
// into hypersparse traffic matrices.
type Event struct {
	// Time is seconds since scenario start.
	Time float64
	// Src and Dst are host names.
	Src, Dst string
	// Packets is the packet count of the flow.
	Packets int
}

// Trace is a time-ordered event sequence.
type Trace []Event

// Sort orders the trace by time (stable on equal stamps, preserving
// emission order).
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}

// Duration returns the maximum event timestamp, or 0 for an empty
// trace. The maximum — not the last element's stamp — so the value
// is correct on a freshly generated, not-yet-sorted trace too.
func (t Trace) Duration() float64 {
	max := 0.0
	for _, e := range t {
		if e.Time > max {
			max = e.Time
		}
	}
	return max
}

// TotalPackets sums all packets in the trace.
func (t Trace) TotalPackets() int {
	total := 0
	for _, e := range t {
		total += e.Packets
	}
	return total
}

// Between returns the sub-trace with t0 ≤ Time < t1, preserving
// order.
func (t Trace) Between(t0, t1 float64) Trace {
	var out Trace
	for _, e := range t {
		if e.Time >= t0 && e.Time < t1 {
			out = append(out, e)
		}
	}
	return out
}

// Assoc aggregates the whole trace into an associative array keyed
// by host names: the D4M view of the traffic.
func (t Trace) Assoc() *matrix.Assoc {
	a := matrix.NewAssoc()
	for _, e := range t {
		a.Add(e.Src, e.Dst, e.Packets)
	}
	return a
}

// Matrix aggregates the whole trace onto a network's axis. Events
// naming unknown hosts are counted as dropped.
func (t Trace) Matrix(net *Network) (*matrix.Dense, int) {
	return t.Assoc().ToDense(net.Labels())
}

// SparseMatrix aggregates the whole trace onto a network's axis as a
// CSR, never materializing the n² cells: one linear fold into a COO
// followed by compaction. Events naming unknown hosts are counted in
// the returned dropped packet total, mirroring Matrix.
func (t Trace) SparseMatrix(net *Network) (*matrix.CSR, int) {
	return t.SparseMatrixArena(nil, net)
}

// SparseMatrixArena is SparseMatrix with the COO accumulator's
// storage pooled in an arena (nil allocates fresh — identical output
// either way). The accumulator is pre-sized to the trace length and
// released before returning; the CSR's arrays are freshly allocated
// and the caller's forever.
func (t Trace) SparseMatrixArena(a *Arena, net *Network) (*matrix.CSR, int) {
	n := net.Len()
	hint := divHint(len(t), 1)
	c := matrix.NewCOOIn(a.Matrix(), n, n, hint)
	dropped := 0
	for _, e := range t {
		i, iok := net.Index(e.Src)
		j, jok := net.Index(e.Dst)
		if !iok || !jok {
			dropped += e.Packets
			continue
		}
		c.Add(i, j, e.Packets)
	}
	csr := c.ToCSR()
	c.Release()
	return csr, dropped
}

// Window is one aggregation interval with its traffic matrix.
type Window struct {
	// Start and End bound the interval [Start,End); the final window
	// of a run additionally covers an event at exactly the horizon.
	Start, End float64
	// Matrix is the aggregated traffic.
	Matrix *matrix.Dense
	// Events is the number of events in the window, including events
	// naming hosts outside the network axis.
	Events int
	// Dropped is the packet volume of the window's events that name
	// hosts outside the network axis and so appear nowhere in Matrix.
	Dropped int
}

// Windows splits the trace into ⌈horizon/windowLen⌉ fixed-length
// aggregation windows starting at 0 — the streaming-analysis view
// ("spatial temporal analysis" in the paper's references). A horizon
// of 0 uses the trace duration rounded up to a whole window. An
// event at exactly the horizon lands in the final window, so a trace
// whose last event falls on a window boundary loses nothing; only
// events beyond the last window's end are excluded.
//
// Windows is a thin dense adapter over WindowsCSR: the trace is
// folded sparsely in a single pass and each window densifies only at
// the end, so the two views are cell-for-cell identical by
// construction.
func (t Trace) Windows(net *Network, windowLen, horizon float64) ([]Window, error) {
	sparse, err := t.WindowsCSR(net, windowLen, horizon)
	if err != nil {
		return nil, err
	}
	out := make([]Window, len(sparse))
	for i, w := range sparse {
		out[i] = Window{
			Start:   w.Start,
			End:     w.End,
			Matrix:  w.Matrix.ToDense(),
			Events:  w.Events,
			Dropped: w.Dropped,
		}
	}
	return out, nil
}
