package netsim

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// Event is one observed flow record: src sent packets to dst at a
// point in time. Events are the simulated counterpart of the
// network sensor feeds the paper's GraphBLAS references aggregate
// into hypersparse traffic matrices.
type Event struct {
	// Time is seconds since scenario start.
	Time float64
	// Src and Dst are host names.
	Src, Dst string
	// Packets is the packet count of the flow.
	Packets int
}

// Trace is a time-ordered event sequence.
type Trace []Event

// Sort orders the trace by time (stable on equal stamps, preserving
// emission order).
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}

// Duration returns the time of the last event, or 0 for an empty
// trace.
func (t Trace) Duration() float64 {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].Time
}

// TotalPackets sums all packets in the trace.
func (t Trace) TotalPackets() int {
	total := 0
	for _, e := range t {
		total += e.Packets
	}
	return total
}

// Between returns the sub-trace with t0 ≤ Time < t1, preserving
// order.
func (t Trace) Between(t0, t1 float64) Trace {
	var out Trace
	for _, e := range t {
		if e.Time >= t0 && e.Time < t1 {
			out = append(out, e)
		}
	}
	return out
}

// Assoc aggregates the whole trace into an associative array keyed
// by host names: the D4M view of the traffic.
func (t Trace) Assoc() *matrix.Assoc {
	a := matrix.NewAssoc()
	for _, e := range t {
		a.Add(e.Src, e.Dst, e.Packets)
	}
	return a
}

// Matrix aggregates the whole trace onto a network's axis. Events
// naming unknown hosts are counted as dropped.
func (t Trace) Matrix(net *Network) (*matrix.Dense, int) {
	return t.Assoc().ToDense(net.Labels())
}

// SparseMatrix aggregates the whole trace onto a network's axis as a
// CSR, never materializing the n² cells: one linear fold into a COO
// followed by compaction. Events naming unknown hosts are counted in
// the returned dropped packet total, mirroring Matrix.
func (t Trace) SparseMatrix(net *Network) (*matrix.CSR, int) {
	n := net.Len()
	c := matrix.NewCOO(n, n)
	dropped := 0
	for _, e := range t {
		i, iok := net.Index(e.Src)
		j, jok := net.Index(e.Dst)
		if !iok || !jok {
			dropped += e.Packets
			continue
		}
		c.Add(i, j, e.Packets)
	}
	return c.ToCSR(), dropped
}

// Window is one aggregation interval with its traffic matrix.
type Window struct {
	// Start and End bound the interval [Start,End).
	Start, End float64
	// Matrix is the aggregated traffic.
	Matrix *matrix.Dense
	// Events is the number of events in the window.
	Events int
}

// Windows splits the trace into fixed-length aggregation windows
// over [0, horizon) — the streaming-analysis view ("spatial temporal
// analysis" in the paper's references). A horizon of 0 uses the
// trace duration rounded up to a whole window.
func (t Trace) Windows(net *Network, windowLen, horizon float64) ([]Window, error) {
	if windowLen <= 0 {
		return nil, fmt.Errorf("netsim: window length must be positive, got %g", windowLen)
	}
	if horizon <= 0 {
		horizon = t.Duration()
		if horizon == 0 {
			horizon = windowLen
		}
	}
	var out []Window
	for start := 0.0; start < horizon; start += windowLen {
		end := start + windowLen
		sub := t.Between(start, end)
		m, _ := sub.Matrix(net)
		out = append(out, Window{Start: start, End: end, Matrix: m, Events: len(sub)})
	}
	return out, nil
}
