package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
)

func TestStandardNetworkLayout(t *testing.T) {
	net := StandardNetwork()
	if net.Len() != 10 {
		t.Fatalf("len = %d", net.Len())
	}
	labels := net.Labels()
	for i, want := range patterns.StandardLabels10 {
		if labels[i] != want {
			t.Errorf("label %d = %q, want %q", i, labels[i], want)
		}
	}
	zones, err := net.Zones()
	if err != nil {
		t.Fatal(err)
	}
	if zones != patterns.StandardZones10 {
		t.Errorf("zones = %+v, want standard", zones)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork([]Host{{Name: "A"}, {Name: "A"}}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewNetwork([]Host{{Name: ""}}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestZonesRejectInterleavedRoles(t *testing.T) {
	net, err := NewNetwork([]Host{
		{Name: "ADV1", Role: RoleAdversary},
		{Name: "WS1", Role: RoleWorkstation},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Zones(); err == nil {
		t.Error("interleaved roles accepted")
	}
}

func TestByRoleAndIndex(t *testing.T) {
	net := StandardNetwork()
	ws := net.ByRole(RoleWorkstation)
	if len(ws) != 3 || ws[0] != "WS1" {
		t.Errorf("workstations = %v", ws)
	}
	i, ok := net.Index("SRV1")
	if !ok || i != 3 {
		t.Errorf("Index(SRV1) = %d,%v", i, ok)
	}
	if _, ok := net.Index("NOPE"); ok {
		t.Error("unknown host indexed")
	}
	if net.Host(4).Role != RoleExternal {
		t.Error("Host(4) role wrong")
	}
}

func TestRoleZoneMapping(t *testing.T) {
	if RoleWorkstation.Zone() != patterns.ZoneBlue ||
		RoleServer.Zone() != patterns.ZoneBlue ||
		RoleExternal.Zone() != patterns.ZoneGrey ||
		RoleAdversary.Zone() != patterns.ZoneRed {
		t.Error("role→zone mapping wrong")
	}
	if RoleServer.String() != "server" {
		t.Error("role names wrong")
	}
}

func TestTraceBasics(t *testing.T) {
	trace := Trace{
		{Time: 2, Src: "A", Dst: "B", Packets: 3},
		{Time: 1, Src: "B", Dst: "A", Packets: 1},
	}
	trace.Sort()
	if trace[0].Time != 1 {
		t.Error("Sort failed")
	}
	if trace.Duration() != 2 || trace.TotalPackets() != 4 {
		t.Error("Duration/TotalPackets wrong")
	}
	between := trace.Between(0, 1.5)
	if len(between) != 1 || between[0].Src != "B" {
		t.Errorf("Between = %v", between)
	}
}

func TestTraceAssocAndMatrix(t *testing.T) {
	net := StandardNetwork()
	trace := Trace{
		{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 2},
		{Time: 1, Src: "WS1", Dst: "SRV1", Packets: 3},
		{Time: 2, Src: "GHOST", Dst: "SRV1", Packets: 7},
	}
	a := trace.Assoc()
	if a.At("WS1", "SRV1") != 5 {
		t.Error("assoc aggregation wrong")
	}
	m, dropped := trace.Matrix(net)
	if m.At(0, 3) != 5 {
		t.Error("matrix aggregation wrong")
	}
	if dropped != 7 {
		t.Errorf("dropped = %d, want 7", dropped)
	}
}

func TestWindows(t *testing.T) {
	net := StandardNetwork()
	trace := Trace{
		{Time: 1, Src: "WS1", Dst: "SRV1", Packets: 1},
		{Time: 11, Src: "WS2", Dst: "SRV1", Packets: 2},
		{Time: 21, Src: "WS3", Dst: "SRV1", Packets: 3},
	}
	windows, err := trace.Windows(net, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 3 {
		t.Fatalf("windows = %d", len(windows))
	}
	for i, w := range windows {
		if w.Events != 1 || w.Matrix.Sum() != i+1 {
			t.Errorf("window %d: events=%d sum=%d", i, w.Events, w.Matrix.Sum())
		}
	}
	if _, err := trace.Windows(net, 0, 10); err == nil {
		t.Error("zero window accepted")
	}
}

func TestWindowsDefaultHorizon(t *testing.T) {
	net := StandardNetwork()
	trace := Trace{{Time: 15, Src: "WS1", Dst: "SRV1", Packets: 1}}
	windows, err := trace.Windows(net, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Errorf("default horizon windows = %d, want 2", len(windows))
	}
}

func TestBackgroundDeterministicAndBenign(t *testing.T) {
	net := StandardNetwork()
	a, err := Background(net, rand.New(rand.NewSource(9)), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Background(net, rand.New(rand.NewSource(9)), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different events")
		}
	}
	// Background traffic never involves adversaries.
	for _, e := range a {
		for _, adv := range net.ByRole(RoleAdversary) {
			if e.Src == adv || e.Dst == adv {
				t.Fatalf("background event touches adversary: %+v", e)
			}
		}
	}
	if _, err := Background(net, nil, 10, 1); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Background(net, rand.New(rand.NewSource(1)), -1, 1); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestScanShapesAsSupernode(t *testing.T) {
	net := StandardNetwork()
	trace, err := Scan(net, rand.New(rand.NewSource(3)), 10)
	if err != nil {
		t.Fatal(err)
	}
	m, dropped := trace.Matrix(net)
	if dropped != 0 {
		t.Error("scan dropped packets")
	}
	zones, _ := net.Zones()
	kind := patterns.ClassifyTopology(m, zones)
	if kind != patterns.TopologyExternalSupernode {
		t.Errorf("scan classified as %v, want external supernode", kind)
	}
}

func TestAttackScenarioPhasesClassify(t *testing.T) {
	net := StandardNetwork()
	zones, _ := net.Zones()
	trace, phases, err := AttackScenario(net, rand.New(rand.NewSource(21)), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("phases = %d", len(phases))
	}
	// Each phase window must classify as its own stage with full
	// confidence (stages are zone-pure by construction).
	for _, p := range phases {
		window := trace.Between(p.Start, p.End)
		if len(window) == 0 {
			t.Fatalf("phase %v has no events", p.Stage)
		}
		m, _ := window.Matrix(net)
		got, conf := patterns.ClassifyAttackStage(m, zones)
		if got != p.Stage {
			t.Errorf("phase %v classified as %v (%.2f)", p.Stage, got, conf)
		}
		if conf != 1.0 {
			t.Errorf("phase %v confidence %.2f", p.Stage, conf)
		}
	}
}

func TestDDoSScenarioPhasesClassify(t *testing.T) {
	net := StandardNetwork()
	zones, _ := net.Zones()
	roles, err := patterns.AssignDDoSRoles(zones)
	if err != nil {
		t.Fatal(err)
	}
	trace, phases, err := DDoSScenario(net, rand.New(rand.NewSource(77)), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range phases {
		window := trace.Between(p.Start, p.End)
		m, _ := window.Matrix(net)
		got, conf := patterns.ClassifyDDoS(m, roles)
		if got != p.Component || conf != 1.0 {
			t.Errorf("phase %v → %v (%.2f)", p.Component, got, conf)
		}
	}
	// The flood dominates traffic volume.
	floodWindow := trace.Between(phases[2].Start, phases[2].End)
	c2Window := trace.Between(phases[0].Start, phases[0].End)
	fm, _ := floodWindow.Matrix(net)
	cm, _ := c2Window.Matrix(net)
	if fm.Sum() <= cm.Sum() {
		t.Error("flood not heavier than C2 chatter")
	}
}

func TestScenariosRejectBadParams(t *testing.T) {
	net := StandardNetwork()
	if _, _, err := AttackScenario(net, nil, 10); err == nil {
		t.Error("nil rng accepted")
	}
	if _, _, err := AttackScenario(net, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, _, err := DDoSScenario(net, nil, 10); err == nil {
		t.Error("nil rng accepted")
	}
	// A network with too few adversaries cannot host the scenarios.
	small, err := NewNetwork([]Host{
		{Name: "WS1", Role: RoleWorkstation},
		{Name: "EXT1", Role: RoleExternal},
		{Name: "ADV1", Role: RoleAdversary},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AttackScenario(small, rand.New(rand.NewSource(1)), 10); err == nil {
		t.Error("undersized network accepted for attack")
	}
	if _, _, err := DDoSScenario(small, rand.New(rand.NewSource(1)), 10); err == nil {
		t.Error("undersized network accepted for ddos")
	}
}

func TestEventsStayInDisplayableRange(t *testing.T) {
	// Scenario packet counts are lesson-friendly (small per event).
	net := StandardNetwork()
	trace, _, err := DDoSScenario(net, rand.New(rand.NewSource(5)), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range trace {
		if e.Packets < 1 || e.Packets > 14 {
			t.Fatalf("event packets %d outside display guidance", e.Packets)
		}
	}
}
