package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// windowsDenseReference is an independent from-scratch implementation
// of the fixed windowing contract, kept deliberately naive (one
// Between scan per window, dense aggregation): the parity oracle the
// single-pass sparse engine is checked against. Event e belongs to
// window k iff e.Time ≥ 0 and e.Time falls in [k·len, (k+1)·len) —
// every window keeps its full range even when the horizon cuts the
// last one short, matching the historical dense behaviour — except
// that the final window also takes an event at exactly the horizon
// (the final-boundary fix).
func windowsDenseReference(t Trace, net *Network, windowLen, horizon float64) []Window {
	if horizon <= 0 {
		horizon = t.Duration()
		if horizon == 0 {
			horizon = windowLen
		}
	}
	nw := int(math.Ceil(horizon / windowLen))
	if nw < 1 {
		nw = 1
	}
	out := make([]Window, nw)
	for k := 0; k < nw; k++ {
		start := float64(k) * windowLen
		end := start + windowLen
		var sub Trace
		for _, e := range t {
			if e.Time < 0 {
				continue
			}
			in := e.Time >= start && e.Time < end
			if k == nw-1 {
				in = e.Time >= start && (e.Time < end || e.Time == horizon)
			}
			if in {
				sub = append(sub, e)
			}
		}
		m, dropped := sub.Matrix(net)
		out[k] = Window{Start: start, End: end, Matrix: m, Events: len(sub), Dropped: dropped}
	}
	return out
}

// TestWindowsKeepsFinalBoundaryEvent is the regression test for the
// dropped-final-event bug: with a default horizon the old loop's
// half-open Between excluded the event at exactly t == Duration()
// whenever the duration was a whole number of windows.
func TestWindowsKeepsFinalBoundaryEvent(t *testing.T) {
	net := StandardNetwork()
	t.Run("exact multiple", func(t *testing.T) {
		trace := Trace{
			{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1},
			{Time: 10, Src: "WS2", Dst: "SRV1", Packets: 2},
			{Time: 20, Src: "WS3", Dst: "SRV1", Packets: 4},
		}
		windows, err := trace.Windows(net, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(windows) != 2 {
			t.Fatalf("windows = %d, want 2", len(windows))
		}
		total := 0
		for _, w := range windows {
			total += w.Matrix.Sum()
		}
		if total != trace.TotalPackets() {
			t.Errorf("windows hold %d packets, trace has %d (final boundary event lost)", total, trace.TotalPackets())
		}
		last := windows[len(windows)-1]
		if last.Events != 2 || last.Matrix.Sum() != 6 {
			t.Errorf("final window events=%d sum=%d, want 2 events summing 6", last.Events, last.Matrix.Sum())
		}
	})
	t.Run("mid window", func(t *testing.T) {
		trace := Trace{
			{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1},
			{Time: 15, Src: "WS2", Dst: "SRV1", Packets: 2},
		}
		windows, err := trace.Windows(net, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(windows) != 2 {
			t.Fatalf("windows = %d, want 2", len(windows))
		}
		total := 0
		for _, w := range windows {
			total += w.Matrix.Sum()
		}
		if total != trace.TotalPackets() {
			t.Errorf("windows hold %d packets, trace has %d", total, trace.TotalPackets())
		}
	})
}

// TestDurationMaxOnUnsortedTrace is the regression test for
// Duration returning the last element's stamp: on an unsorted
// (freshly generated, pre-Sort) trace the last element is not the
// latest event.
func TestDurationMaxOnUnsortedTrace(t *testing.T) {
	trace := Trace{
		{Time: 3, Src: "A", Dst: "B", Packets: 1},
		{Time: 9, Src: "B", Dst: "A", Packets: 1},
		{Time: 4, Src: "A", Dst: "B", Packets: 1},
	}
	if d := trace.Duration(); d != 9 {
		t.Errorf("Duration() = %g on unsorted trace, want 9", d)
	}
	if d := (Trace{}).Duration(); d != 0 {
		t.Errorf("empty Duration() = %g, want 0", d)
	}
}

// TestWindowsSurfacesDropped is the regression test for Windows
// silently discarding the per-window dropped-packet count.
func TestWindowsSurfacesDropped(t *testing.T) {
	net := StandardNetwork()
	trace := Trace{
		{Time: 1, Src: "WS1", Dst: "SRV1", Packets: 2},
		{Time: 2, Src: "GHOST", Dst: "SRV1", Packets: 7},
		{Time: 12, Src: "WS1", Dst: "PHANTOM", Packets: 3},
	}
	windows, err := trace.Windows(net, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(windows))
	}
	if windows[0].Dropped != 7 || windows[1].Dropped != 3 {
		t.Errorf("Dropped = %d,%d, want 7,3", windows[0].Dropped, windows[1].Dropped)
	}
	// Events counts dropped events too; the matrix does not.
	if windows[0].Events != 2 || windows[0].Matrix.Sum() != 2 {
		t.Errorf("window 0 events=%d sum=%d, want 2 events summing 2", windows[0].Events, windows[0].Matrix.Sum())
	}
}

// TestWindowsFullFinalWindowOnTruncatingHorizon pins the historical
// contract for an explicit horizon that is not a whole number of
// windows: the final window keeps its complete [start, start+len)
// range — events between the horizon and the window's end are still
// counted, as the legacy dense loop counted them — and only events
// beyond the last window's end are excluded.
func TestWindowsFullFinalWindowOnTruncatingHorizon(t *testing.T) {
	net := StandardNetwork()
	trace := Trace{
		{Time: 21, Src: "WS1", Dst: "SRV1", Packets: 1},
		{Time: 27, Src: "WS2", Dst: "SRV1", Packets: 2}, // past horizon 25, inside [20,30)
		{Time: 31, Src: "WS3", Dst: "SRV1", Packets: 4}, // past the last window's end
	}
	windows, err := trace.Windows(net, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}
	last := windows[2]
	if last.Events != 2 || last.Matrix.Sum() != 3 {
		t.Errorf("final window events=%d sum=%d, want 2 events summing 3", last.Events, last.Matrix.Sum())
	}
}

// TestWindowsCSRRejectsBadInput pins the error paths.
func TestWindowsCSRRejectsBadInput(t *testing.T) {
	net := StandardNetwork()
	if _, err := (Trace{}).WindowsCSR(net, 0, 10); err == nil {
		t.Error("zero window length accepted")
	}
	if _, err := (Trace{}).WindowsCSR(net, -1, 10); err == nil {
		t.Error("negative window length accepted")
	}
	if _, err := (Trace{}).WindowsCSR(nil, 1, 10); err == nil {
		t.Error("nil network accepted")
	}
	// An empty trace with a default horizon still yields one window.
	windows, err := (Trace{}).WindowsCSR(net, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 || windows[0].Matrix.NNZ() != 0 {
		t.Errorf("empty trace windows = %d, want 1 empty window", len(windows))
	}
}

// sparseEqualsDense asserts a SparseWindow slice is cell-for-cell
// identical to a dense Window slice.
func sparseEqualsDense(t *testing.T, label string, sparse []SparseWindow, dense []Window) {
	t.Helper()
	if len(sparse) != len(dense) {
		t.Fatalf("%s: %d sparse windows vs %d dense", label, len(sparse), len(dense))
	}
	for k := range sparse {
		s, d := sparse[k], dense[k]
		if s.Start != d.Start || s.End != d.End || s.Events != d.Events || s.Dropped != d.Dropped {
			t.Errorf("%s window %d: bounds/counters differ: %+v vs Start=%g End=%g Events=%d Dropped=%d",
				label, k, s, d.Start, d.End, d.Events, d.Dropped)
		}
		if !s.Matrix.ToDense().Equal(d.Matrix) {
			t.Errorf("%s window %d: matrices differ", label, k)
		}
	}
}

// TestCatalogWindowingParity is the acceptance invariant: for every
// catalog scenario the single-pass sparse engine must be
// byte-identical to the fixed dense reference, on both an
// exact-multiple and a non-multiple window length, with and without
// an explicit horizon.
func TestCatalogWindowingParity(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for _, net := range []*Network{StandardNetwork(), ScaledNetwork(64)} {
				trace, err := GenerateTrace(s, net, 42, 0, Params{})
				if err != nil {
					t.Fatal(err)
				}
				for _, cfg := range []struct {
					name             string
					windowLen, horiz float64
				}{
					{"exact-multiple default horizon", 10, 0},
					{"non-multiple default horizon", 7.5, 0},
					{"explicit truncating horizon", 10, 25},
				} {
					sparse, err := trace.WindowsCSR(net, cfg.windowLen, cfg.horiz)
					if err != nil {
						t.Fatal(err)
					}
					want := windowsDenseReference(trace, net, cfg.windowLen, cfg.horiz)
					label := cfg.name
					sparseEqualsDense(t, label, sparse, want)
					// The public dense adapter must agree with both.
					adapter, err := trace.Windows(net, cfg.windowLen, cfg.horiz)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(adapter, want) {
						t.Errorf("%s: Windows adapter differs from dense reference", label)
					}
				}
			}
		})
	}
}

// TestWindowsCSRSortInsensitive pins the single-pass claim: window
// membership depends only on each event's own timestamp, so a
// shuffled trace windows identically to a sorted one.
func TestWindowsCSRSortInsensitive(t *testing.T) {
	net := StandardNetwork()
	s, _ := LookupScenario("background")
	trace, err := GenerateTrace(s, net, 11, 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append(Trace(nil), trace...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := trace.WindowsCSR(net, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := shuffled.WindowsCSR(net, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("window counts differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k].Events != b[k].Events || a[k].Dropped != b[k].Dropped ||
			!a[k].Matrix.ToDense().Equal(b[k].Matrix.ToDense()) {
			t.Errorf("window %d differs between sorted and shuffled trace", k)
		}
	}
}

// benchTrace generates a heavy flashcrowd trace on a scaled network
// for the windowing benchmarks.
func benchTrace(b *testing.B, hosts, scale int) (Trace, *Network) {
	b.Helper()
	net := ScaledNetwork(hosts)
	s, ok := LookupScenario("flashcrowd")
	if !ok {
		b.Fatal("flashcrowd scenario missing")
	}
	trace, err := GenerateTrace(s, net, 42, 0, Params{Scale: scale})
	if err != nil {
		b.Fatal(err)
	}
	return trace, net
}

// legacyWindows reproduces the pre-rewrite O(W·E) densifying loop
// (one Between scan plus one n² Dense per window) so the benchmark
// records what the single-pass engine replaced.
func legacyWindows(t Trace, net *Network, windowLen, horizon float64) []Window {
	var out []Window
	for start := 0.0; start < horizon; start += windowLen {
		end := start + windowLen
		sub := t.Between(start, end)
		m, _ := sub.Matrix(net)
		out = append(out, Window{Start: start, End: end, Matrix: m, Events: len(sub)})
	}
	return out
}

func BenchmarkWindowing(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		hosts int
		scale int
	}{
		{"1k-hosts", 1000, 4},
		{"10k-hosts", 10000, 4},
	} {
		cfg := cfg
		// The trace generates inside the named sub-benchmark so a
		// -bench filter on one size skips the other's generation too.
		b.Run(cfg.name, func(b *testing.B) {
			trace, net := benchTrace(b, cfg.hosts, cfg.scale)
			b.Run("legacy-dense", func(b *testing.B) {
				if cfg.hosts > 1000 {
					// 8 windows × (10k)² ints ≈ 6.4 GB: the dense loop
					// is infeasible at this size, which is the point.
					b.Skip("dense windowing infeasible at 10k hosts")
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					legacyWindows(trace, net, 5, 40)
				}
			})
			b.Run("sparse-csr", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := trace.WindowsCSR(net, 5, 40); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
