package netsim

import (
	"reflect"
	"testing"

	"repro/internal/matrix"
	"repro/internal/patterns"
)

// The sparse-end-to-end parity suite: for every catalog scenario the
// CSR analysis path (GenerateCSR → matrix.Matrix accessor) must
// produce byte-identical results to the dense path on every analysis
// helper and on the behaviour classifier. This is the tentpole
// invariant that lets large runs skip dense materialization without
// changing a single classification.

// parityNetworks are the sizes the suite checks: the paper's
// standard 10-host network and a scaled one that exercises larger
// casts and real sparsity.
func parityNetworks(t *testing.T) []*Network {
	t.Helper()
	return []*Network{StandardNetwork(), ScaledNetwork(64)}
}

func TestCatalogCSRAnalysisParity(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for _, net := range parityNetworks(t) {
				zones, err := net.Zones()
				if err != nil {
					t.Fatal(err)
				}
				coo, _, err := GenerateMatrix(s, net, 42, 0, Params{})
				if err != nil {
					t.Fatal(err)
				}
				csr := coo.ToCSR()
				dense := coo.ToDense()

				if !csr.ToDense().Equal(dense) {
					t.Fatalf("hosts=%d: CSR densifies differently from COO", net.Len())
				}

				dp, cp := matrix.ProfileOf(dense), matrix.ProfileOf(csr)
				if !reflect.DeepEqual(dp, cp) {
					t.Errorf("hosts=%d: Profile mismatch\ndense: %+v\ncsr:   %+v", net.Len(), dp, cp)
				}

				wantHubs := matrix.SupernodesOf(dense, patterns.SupernodeFanThreshold)
				gotHubs := matrix.SupernodesOf(csr, patterns.SupernodeFanThreshold)
				if !reflect.DeepEqual(gotHubs, wantHubs) {
					t.Errorf("hosts=%d: Supernodes mismatch: %v vs %v", net.Len(), gotHubs, wantHubs)
				}

				if got, want := matrix.IsolatedPairsOf(csr), matrix.IsolatedPairsOf(dense); !reflect.DeepEqual(got, want) {
					t.Errorf("hosts=%d: IsolatedPairs mismatch: %v vs %v", net.Len(), got, want)
				}
				if got, want := matrix.DegreeHistogramOf(csr), matrix.DegreeHistogramOf(dense); !reflect.DeepEqual(got, want) {
					t.Errorf("hosts=%d: DegreeHistogram mismatch", net.Len())
				}
				if got, want := matrix.TopLinksOf(csr, 25), matrix.TopLinksOf(dense, 25); !reflect.DeepEqual(got, want) {
					t.Errorf("hosts=%d: TopLinks mismatch: %v vs %v", net.Len(), got, want)
				}

				db, dconf := patterns.ClassifyBehavior(dense, zones)
				cb, cconf := patterns.ClassifyBehaviorOf(csr, zones)
				if db != cb || dconf != cconf {
					t.Errorf("hosts=%d: ClassifyBehavior mismatch: dense %v (%v), csr %v (%v)",
						net.Len(), db, dconf, cb, cconf)
				}

				dm := patterns.ClassifyMixture(dense, zones)
				cm := patterns.ClassifyMixtureOf(csr, zones)
				if !reflect.DeepEqual(dm, cm) {
					t.Errorf("hosts=%d: ClassifyMixture mismatch: dense %v, csr %v", net.Len(), dm, cm)
				}

				if got, want := patterns.ClassifyTopologyOf(csr, zones), patterns.ClassifyTopology(dense, zones); got != want {
					t.Errorf("hosts=%d: ClassifyTopology mismatch: %v vs %v", net.Len(), got, want)
				}
				ds, dsc := patterns.ClassifyAttackStage(dense, zones)
				cs, csc := patterns.ClassifyAttackStageOf(csr, zones)
				if ds != cs || dsc != csc {
					t.Errorf("hosts=%d: ClassifyAttackStage mismatch: %v (%v) vs %v (%v)",
						net.Len(), ds, dsc, cs, csc)
				}

				if roles, err := patterns.AssignDDoSRoles(zones); err == nil {
					dd, ddc := patterns.ClassifyDDoS(dense, roles)
					cd, cdc := patterns.ClassifyDDoSOf(csr, roles)
					if dd != cd || ddc != cdc {
						t.Errorf("hosts=%d: ClassifyDDoS mismatch: %v (%v) vs %v (%v)",
							net.Len(), dd, ddc, cd, cdc)
					}
				}
			}
		})
	}
}

// TestGenerateCSRMatchesGenerateMatrix pins the convenience wrapper:
// same seed, same stats, same matrix.
func TestGenerateCSRMatchesGenerateMatrix(t *testing.T) {
	s, ok := LookupScenario("ddos")
	if !ok {
		t.Fatal("ddos scenario missing")
	}
	net := ScaledNetwork(32)
	coo, wantStats, err := GenerateMatrix(s, net, 7, 3, Params{})
	if err != nil {
		t.Fatal(err)
	}
	csr, gotStats, err := GenerateCSR(s, net, 7, 3, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Errorf("stats = %+v, want %+v", gotStats, wantStats)
	}
	if !csr.ToDense().Equal(coo.ToDense()) {
		t.Error("GenerateCSR matrix differs from GenerateMatrix")
	}
	if csr.NNZ() != coo.Compact().Len() {
		t.Errorf("nnz = %d, want %d", csr.NNZ(), coo.Compact().Len())
	}
	// Folding the materialized trace (twsim's aggregate path) must
	// agree with direct sparse generation.
	trace, err := GenerateTrace(s, net, 7, 3, Params{})
	if err != nil {
		t.Fatal(err)
	}
	folded, dropped := trace.SparseMatrix(net)
	if dropped != wantStats.Dropped {
		t.Errorf("SparseMatrix dropped = %d, want %d", dropped, wantStats.Dropped)
	}
	if !folded.ToDense().Equal(coo.ToDense()) {
		t.Error("Trace.SparseMatrix differs from GenerateMatrix aggregate")
	}
}
