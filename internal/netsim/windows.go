package netsim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// The sparse streaming window engine. The historical dense Windows
// re-scanned the whole trace once per window (O(W·E)) and
// materialized an n² Dense for every interval; WindowsCSR folds the
// trace into per-window COO shards in a single pass (O(E)) and
// compacts each shard to CSR in parallel, so the spatial-temporal
// view costs O(E + nnz·log nnz) no matter how many windows the
// horizon splits into. Windows (events.go) densifies this result,
// and the bridge and twsim consume it directly.

// SparseWindow is one aggregation interval with its traffic matrix
// in CSR form.
type SparseWindow struct {
	// Start and End bound the interval [Start,End); the final window
	// of a run additionally covers an event at exactly the horizon.
	Start, End float64
	// Matrix is the aggregated traffic, never nil (an empty window
	// holds an empty CSR).
	Matrix *matrix.CSR
	// Events is the number of events in the window, including events
	// naming hosts outside the network axis.
	Events int
	// Dropped is the packet volume of the window's events that name
	// hosts outside the network axis and so appear nowhere in Matrix.
	Dropped int
}

// windowAcc is one window's accumulation state during the fold.
type windowAcc struct {
	coo     *matrix.COO
	events  int
	dropped int
}

// windowIndex assigns a timestamp to its window in [0, nw), settling
// representability edge cases by direct comparison against the
// float64(k)*windowLen boundaries. Windows always span whole
// windowLen intervals: when the horizon cuts the final window short,
// that window still covers its full [start, start+len) range (the
// historical dense behaviour), and it additionally covers an event
// at exactly the horizon — the final-boundary fix. ok is false for
// events before 0 or beyond the last window's end.
func windowIndex(t, windowLen, horizon float64, nw int) (int, bool) {
	if t < 0 {
		return 0, false
	}
	if limit := float64(nw) * windowLen; t >= limit && t != horizon {
		return 0, false
	}
	w := int(t / windowLen)
	if w >= nw {
		w = nw - 1
	}
	for w+1 < nw && t >= float64(w+1)*windowLen {
		w++
	}
	for w > 0 && t < float64(w)*windowLen {
		w--
	}
	return w, true
}

// WindowsCSR splits the trace into ⌈horizon/windowLen⌉ fixed-length
// aggregation windows starting at 0, without ever materializing a
// dense matrix: one linear pass assigns each event to its window's
// COO shard, then the shards compact to CSR concurrently. A horizon
// of 0 uses the trace duration rounded up to a whole window. Every
// window spans its full windowLen (a horizon mid-window keeps the
// final window's complete range), and an event at exactly the
// horizon lands in the final window; only events beyond the last
// window's end are excluded. The trace does not need to be sorted —
// window membership depends only on each event's own timestamp.
func (t Trace) WindowsCSR(net *Network, windowLen, horizon float64) ([]SparseWindow, error) {
	return t.WindowsCSRContext(context.Background(), net, windowLen, horizon)
}

// WindowsCSRContext is WindowsCSR with cancellation: the linear fold
// checks the context every few thousand events and the parallel
// compaction loop checks it between windows, so a cancelled request
// stops splitting a large trace instead of finishing the whole
// spatial-temporal view.
func (t Trace) WindowsCSRContext(ctx context.Context, net *Network, windowLen, horizon float64) ([]SparseWindow, error) {
	return t.WindowsCSRArena(ctx, nil, net, windowLen, horizon)
}

// WindowsCSRArena is WindowsCSRContext with each window's COO shard
// pooled in an arena (nil allocates fresh — identical windows either
// way). Shards are pre-sized to the trace's per-window average and
// release into the arena as soon as they compact; the returned
// windows' CSR arrays are always freshly allocated, never pooled.
func (t Trace) WindowsCSRArena(ctx context.Context, a *Arena, net *Network, windowLen, horizon float64) ([]SparseWindow, error) {
	if net == nil {
		return nil, fmt.Errorf("netsim: nil network")
	}
	if windowLen <= 0 {
		return nil, fmt.Errorf("netsim: window length must be positive, got %g", windowLen)
	}
	if horizon <= 0 {
		horizon = t.Duration()
		if horizon == 0 {
			horizon = windowLen
		}
	}
	nw := int(math.Ceil(horizon / windowLen))
	if nw < 1 {
		nw = 1
	}

	// Single pass: fold every event into its window's shard.
	n := net.Len()
	hint := divHint(len(t), nw)
	accs := make([]windowAcc, nw)
	for ei, e := range t {
		if ei&0xfff == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w, ok := windowIndex(e.Time, windowLen, horizon, nw)
		if !ok {
			continue
		}
		acc := &accs[w]
		acc.events++
		i, iok := net.Index(e.Src)
		j, jok := net.Index(e.Dst)
		if !iok || !jok {
			acc.dropped += e.Packets
			continue
		}
		if acc.coo == nil {
			acc.coo = matrix.NewCOOIn(a.Matrix(), n, n, hint)
		}
		acc.coo.Add(i, j, e.Packets)
	}

	// Compact each window's shard to CSR; windows are independent, so
	// the O(nnz log nnz) sorts spread across all CPUs.
	out := make([]SparseWindow, nw)
	workers := runtime.NumCPU()
	if workers > nw {
		workers = nw
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				k := int(next.Add(1)) - 1
				if k >= nw {
					return
				}
				acc := accs[k]
				coo := acc.coo
				if coo == nil {
					coo = matrix.NewCOO(n, n)
				}
				start := float64(k) * windowLen
				csr := coo.ToCSR()
				// The CSR copied the triples out; the shard's slab is
				// unreachable now.
				coo.Release()
				out[k] = SparseWindow{
					Start:   start,
					End:     start + windowLen,
					Matrix:  csr,
					Events:  acc.events,
					Dropped: acc.dropped,
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
