package netsim

import (
	"fmt"

	"repro/internal/patterns"
)

// Role classifies a simulated host.
type Role int

// Host roles. C2 and Bot refine Adversary/External for DDoS casts.
const (
	RoleWorkstation Role = iota
	RoleServer
	RoleExternal
	RoleAdversary
)

// roleNames holds display names in role order.
var roleNames = [...]string{"workstation", "server", "external", "adversary"}

// String returns the role's display name.
func (r Role) String() string {
	if r < 0 || int(r) >= len(roleNames) {
		return fmt.Sprintf("role(%d)", int(r))
	}
	return roleNames[r]
}

// Zone maps the role onto the blue/grey/red trust zones.
func (r Role) Zone() patterns.Zone {
	switch r {
	case RoleWorkstation, RoleServer:
		return patterns.ZoneBlue
	case RoleExternal:
		return patterns.ZoneGrey
	default:
		return patterns.ZoneRed
	}
}

// Host is one simulated endpoint.
type Host struct {
	// Name is the axis label ("WS1", "ADV3", …).
	Name string
	// Role classifies the host.
	Role Role
}

// Network is an ordered set of hosts; the order defines the traffic
// matrix axis.
type Network struct {
	hosts  []Host
	byName map[string]int
}

// NewNetwork builds a network from hosts, rejecting duplicate
// names.
func NewNetwork(hosts []Host) (*Network, error) {
	n := &Network{byName: make(map[string]int, len(hosts))}
	for _, h := range hosts {
		if h.Name == "" {
			return nil, fmt.Errorf("netsim: host with empty name")
		}
		if _, dup := n.byName[h.Name]; dup {
			return nil, fmt.Errorf("netsim: duplicate host %q", h.Name)
		}
		n.byName[h.Name] = len(n.hosts)
		n.hosts = append(n.hosts, h)
	}
	if len(n.hosts) == 0 {
		return nil, fmt.Errorf("netsim: empty network")
	}
	return n, nil
}

// StandardNetwork returns the paper's canonical 10-host network:
// three workstations, one server, two externals, four adversaries —
// matching StandardLabels10 position for position.
func StandardNetwork() *Network {
	n, err := NewNetwork([]Host{
		{Name: "WS1", Role: RoleWorkstation},
		{Name: "WS2", Role: RoleWorkstation},
		{Name: "WS3", Role: RoleWorkstation},
		{Name: "SRV1", Role: RoleServer},
		{Name: "EXT1", Role: RoleExternal},
		{Name: "EXT2", Role: RoleExternal},
		{Name: "ADV1", Role: RoleAdversary},
		{Name: "ADV2", Role: RoleAdversary},
		{Name: "ADV3", Role: RoleAdversary},
		{Name: "ADV4", Role: RoleAdversary},
	})
	if err != nil {
		panic(err) // static host list cannot fail
	}
	return n
}

// ScaledNetwork returns a network of approximately the requested
// size with the standard role mix (~65% workstations, 5% servers,
// 15% externals, 15% adversaries) and the floors every catalog
// scenario's cast needs (≥3 workstations, ≥1 server, ≥2 externals,
// ≥4 adversaries). Hosts are ordered workstations, servers,
// externals, adversaries, preserving the blue→grey→red zone layout.
// Sizes below the 10-host floor return the paper's StandardNetwork.
func ScaledNetwork(hosts int) *Network {
	if hosts <= 10 {
		return StandardNetwork()
	}
	adv := hosts * 3 / 20
	if adv < 4 {
		adv = 4
	}
	ext := hosts * 3 / 20
	if ext < 2 {
		ext = 2
	}
	srv := hosts / 20
	if srv < 1 {
		srv = 1
	}
	ws := hosts - adv - ext - srv
	if ws < 3 {
		ws = 3
	}
	list := make([]Host, 0, ws+srv+ext+adv)
	add := func(n int, prefix string, role Role) {
		for i := 1; i <= n; i++ {
			list = append(list, Host{Name: fmt.Sprintf("%s%d", prefix, i), Role: role})
		}
	}
	add(ws, "WS", RoleWorkstation)
	add(srv, "SRV", RoleServer)
	add(ext, "EXT", RoleExternal)
	add(adv, "ADV", RoleAdversary)
	n, err := NewNetwork(list)
	if err != nil {
		panic(err) // generated host list cannot collide
	}
	return n
}

// Len returns the number of hosts.
func (n *Network) Len() int { return len(n.hosts) }

// Host returns the i-th host.
func (n *Network) Host(i int) Host { return n.hosts[i] }

// Labels returns the axis label list in order.
func (n *Network) Labels() []string {
	out := make([]string, len(n.hosts))
	for i, h := range n.hosts {
		out[i] = h.Name
	}
	return out
}

// Index returns the position of a host name.
func (n *Network) Index(name string) (int, bool) {
	i, ok := n.byName[name]
	return i, ok
}

// ByRole returns the names of all hosts with the role, in order.
func (n *Network) ByRole(r Role) []string {
	// Scenarios call this per generation chunk, so size the result
	// exactly: one allocation instead of append's doubling ladder.
	count := 0
	for _, h := range n.hosts {
		if h.Role == r {
			count++
		}
	}
	if count == 0 {
		return nil
	}
	out := make([]string, 0, count)
	for _, h := range n.hosts {
		if h.Role == r {
			out = append(out, h.Name)
		}
	}
	return out
}

// Zones derives the blue/grey/red zone boundaries from the host
// order, which must group blue then grey then red (the standard
// layout). It returns an error when roles interleave.
func (n *Network) Zones() (patterns.Zones, error) {
	z := patterns.Zones{N: len(n.hosts)}
	stage := patterns.ZoneBlue
	for i, h := range n.hosts {
		hz := h.Role.Zone()
		if hz < stage {
			return patterns.Zones{}, fmt.Errorf("netsim: host %q (%v) breaks blue→grey→red ordering", h.Name, hz)
		}
		if hz > stage {
			stage = hz
		}
		switch {
		case hz == patterns.ZoneBlue:
			z.BlueEnd = i + 1
		case hz == patterns.ZoneGrey:
			z.GreyEnd = i + 1
		}
	}
	if z.GreyEnd < z.BlueEnd {
		z.GreyEnd = z.BlueEnd
	}
	return z, nil
}
