package netsim

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/patterns"
)

// composeParams keeps the property-test runs small enough to sweep
// the whole catalog pairwise.
var composeParams = Params{Duration: 8, Rate: 6}

// generateCSRAt is a test helper: the composed scenario's CSR at a
// given worker count, fatal on error.
func generateCSRAt(t *testing.T, s Scenario, net *Network, workers int) *matrix.CSR {
	t.Helper()
	csr, _, err := GenerateCSR(s, net, 42, workers, composeParams)
	if err != nil {
		t.Fatalf("%s on %d workers: %v", s.Name(), workers, err)
	}
	return csr
}

// TestComposedCrossWorkerDeterminism is the property test the
// composition algebra must uphold: Overlay and Sequence of ANY two
// catalog entries yield byte-identical CSR matrices at workers ∈
// {1, 4, 16} — composed scenarios shard deterministically exactly
// like primitives.
func TestComposedCrossWorkerDeterminism(t *testing.T) {
	net := StandardNetwork()
	combine := map[string]func(a, b Scenario) Scenario{
		"overlay":  func(a, b Scenario) Scenario { return Overlay(a, b) },
		"sequence": func(a, b Scenario) Scenario { return Sequence(a, b) },
	}
	for _, a := range Scenarios() {
		for _, b := range Scenarios() {
			for kind, f := range combine {
				composed := f(a, b)
				t.Run(fmt.Sprintf("%s/%s+%s", kind, a.Name(), b.Name()), func(t *testing.T) {
					base := generateCSRAt(t, composed, net, 1)
					for _, workers := range []int{4, 16} {
						got := generateCSRAt(t, composed, net, workers)
						if !reflect.DeepEqual(got, base) {
							t.Errorf("workers=%d: CSR differs from 1-worker result", workers)
						}
					}
				})
			}
		}
	}
}

// TestOverlayLayersComponents: the overlay's first component keeps
// its standalone chunk seeds, so its exact traffic is a sub-matrix of
// the overlay; every component's volume is present.
func TestOverlayLayersComponents(t *testing.T) {
	net := StandardNetwork()
	scan, _ := LookupScenario("scan")
	background, _ := LookupScenario("background")
	composed := Overlay(background, scan)

	overlayCOO, stats, err := GenerateMatrix(composed, net, 42, 1, composeParams)
	if err != nil {
		t.Fatal(err)
	}
	bgCOO, bgStats, err := GenerateMatrix(background, net, 42, 1, composeParams)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events <= bgStats.Events {
		t.Errorf("overlay events %d not larger than background alone %d", stats.Events, bgStats.Events)
	}
	// Component 0 occupies the leading chunk indices, so its chunk
	// seeds — and therefore its exact cells — are those of a
	// standalone run: overlay[i][j] ≥ background[i][j] everywhere.
	overlay, bg := overlayCOO.ToDense(), bgCOO.ToDense()
	for i := 0; i < net.Len(); i++ {
		for j := 0; j < net.Len(); j++ {
			if overlay.At(i, j) < bg.At(i, j) {
				t.Fatalf("overlay cell (%d,%d)=%d below background %d", i, j, overlay.At(i, j), bg.At(i, j))
			}
		}
	}
}

// TestSequenceConfinesStepsToSlots: each step's events land inside
// its slot (modulo the sub-second reply jitter scripts emit).
func TestSequenceConfinesStepsToSlots(t *testing.T) {
	net := StandardNetwork()
	scan, _ := LookupScenario("scan")
	ddos, _ := LookupScenario("ddos")
	composed := SequenceSteps(
		SeqStep{Scenario: scan, Duration: 10},
		SeqStep{Scenario: ddos},
	)
	p := Params{Duration: 40}
	trace, err := GenerateTrace(composed, net, 1, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty composed trace")
	}
	const jitter = 0.05 // scripts emit replies at t+0.01/0.02
	sawEarly, sawLate := false, false
	for _, e := range trace {
		if e.Time < 0 || e.Time > 40+jitter {
			t.Fatalf("event at %gs outside the composed duration", e.Time)
		}
		if e.Time < 10 {
			sawEarly = true
			// The first ten seconds belong to the scan: red sources only.
			if i, ok := net.Index(e.Src); !ok || net.Host(i).Role != RoleAdversary {
				t.Fatalf("non-scan event %+v inside the scan slot", e)
			}
		}
		if e.Time > 10+jitter {
			sawLate = true
		}
	}
	if !sawEarly || !sawLate {
		t.Fatalf("sequence did not populate both slots (early=%v late=%v)", sawEarly, sawLate)
	}

	// The merged ground-truth schedule: the scan slot, then the DDoS
	// component phases offset into [10,40).
	sched := composed.(Scheduler).Schedule(p)
	if len(sched) != 5 {
		t.Fatalf("schedule has %d phases, want 5: %+v", len(sched), sched)
	}
	if sched[0].Label != "scan" || sched[0].Start != 0 || sched[0].End != 10 {
		t.Errorf("first phase = %+v, want scan [0,10)", sched[0])
	}
	if sched[1].Start != 10 || sched[4].End != 40 {
		t.Errorf("ddos phases misaligned: %+v", sched[1:])
	}
}

// TestSequenceRejectsOversubscribedSlots: timed steps that consume
// the whole duration leave a later step no time; generation fails
// loudly instead of silently teaching a phantom layer.
func TestSequenceRejectsOversubscribedSlots(t *testing.T) {
	net := StandardNetwork()
	scan, _ := LookupScenario("scan")
	ddos, _ := LookupScenario("ddos")
	composed := SequenceSteps(
		SeqStep{Scenario: scan, Duration: 50},
		SeqStep{Scenario: ddos},
	)
	_, err := GenerateTrace(composed, net, 1, 1, Params{Duration: 40})
	if err == nil {
		t.Fatal("oversubscribed sequence generated silently")
	}
	if !strings.Contains(err.Error(), "ddos") || !strings.Contains(err.Error(), "no time") {
		t.Errorf("unhelpful error %q", err)
	}
	if _, _, err := GenerateCSR(composed, net, 1, 4, Params{Duration: 40}); err == nil {
		t.Error("oversubscribed sequence generated silently on the sparse path")
	}
}

// TestDilateStretchesTime: dilation preserves the event set but
// multiplies timestamps, halving temporal density at factor 2.
func TestDilateStretchesTime(t *testing.T) {
	net := StandardNetwork()
	scan, _ := LookupScenario("scan")
	p := Params{Duration: 20}
	inner, err := GenerateTrace(scan, net, 3, 1, Params{Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	dilated, err := GenerateTrace(Dilate(scan, 2), net, 3, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(dilated) != len(inner) {
		t.Fatalf("dilation changed event count %d -> %d", len(inner), len(dilated))
	}
	for k := range dilated {
		if dilated[k].Time != inner[k].Time*2 {
			t.Fatalf("event %d at %gs, want %gs", k, dilated[k].Time, inner[k].Time*2)
		}
		if dilated[k].Src != inner[k].Src || dilated[k].Dst != inner[k].Dst || dilated[k].Packets != inner[k].Packets {
			t.Fatalf("dilation changed event %d payload", k)
		}
	}
}

// TestAmplifyEqualsScale: amplify(s, n) is exactly Params.Scale
// multiplied by n — identical chunk seeds, identical matrix.
func TestAmplifyEqualsScale(t *testing.T) {
	net := StandardNetwork()
	ddos, _ := LookupScenario("ddos")
	amplified, _, err := GenerateMatrix(Amplify(ddos, 3), net, 9, 2, Params{Duration: 12})
	if err != nil {
		t.Fatal(err)
	}
	scaled, _, err := GenerateMatrix(ddos, net, 9, 2, Params{Duration: 12, Scale: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !amplified.ToDense().Equal(scaled.ToDense()) {
		t.Error("Amplify(ddos,3) differs from Scale=3")
	}
}

// TestRelabelMatchesPermutationKernel pins the algebraic identity the
// Relabel combinator rests on: relabeling hosts at the event level
// equals the parallel symmetric permutation of the original matrix.
func TestRelabelMatchesPermutationKernel(t *testing.T) {
	net := StandardNetwork()
	mapping := map[string]string{
		"WS1": "WS3", "WS3": "WS1", // swap two workstations
		"ADV1": "ADV4", "ADV4": "ADV1", // and two adversaries
	}
	for _, name := range []string{"scan", "ddos", "worm"} {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		base, _, err := GenerateCSR(s, net, 21, 4, composeParams)
		if err != nil {
			t.Fatal(err)
		}
		relabeled, _, err := GenerateCSR(Relabel(s, mapping), net, 21, 4, composeParams)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := PermutationOf(net, mapping)
		if err != nil {
			t.Fatal(err)
		}
		want, err := matrix.PermuteCSR(base, perm, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(relabeled, want) {
			t.Errorf("%s: Relabel matrix differs from PermuteCSR of the original", name)
		}
	}
}

// TestRelabelToForeignHostDrops: mapping a host off the axis counts
// its packets as dropped, like any foreign name.
func TestRelabelToForeignHostDrops(t *testing.T) {
	net := StandardNetwork()
	scan, _ := LookupScenario("scan")
	_, stats, err := GenerateMatrix(Relabel(scan, map[string]string{"ADV1": "NOWHERE"}), net, 2, 1, composeParams)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Error("relabeling the scanner off the axis dropped nothing")
	}
}

// TestPermutationOfRejectsBadMappings covers the bijection checks.
func TestPermutationOfRejectsBadMappings(t *testing.T) {
	net := StandardNetwork()
	for name, mapping := range map[string]map[string]string{
		"unknown source": {"NOPE": "WS1"},
		"unknown target": {"WS1": "NOPE"},
		"collision":      {"WS1": "WS2"}, // WS2 also keeps itself
	} {
		if _, err := PermutationOf(net, mapping); err == nil {
			t.Errorf("%s mapping accepted", name)
		}
	}
	if _, err := PermutationOf(nil, nil); err == nil {
		t.Error("nil network accepted")
	}
}

// TestTimedPinsDuration: a timed component ignores the outer duration.
func TestTimedPinsDuration(t *testing.T) {
	net := StandardNetwork()
	scan, _ := LookupScenario("scan")
	timed, err := GenerateTrace(Timed(scan, 10), net, 4, 1, Params{Duration: 40})
	if err != nil {
		t.Fatal(err)
	}
	want, err := GenerateTrace(scan, net, 4, 1, Params{Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(timed, want) {
		t.Error("Timed(scan,10) in a 40s run differs from scan at 10s")
	}
}

// TestOverlayScheduleMerges: overlaying two scheduled scenarios
// yields one merged, start-sorted timeline.
func TestOverlayScheduleMerges(t *testing.T) {
	attack, _ := LookupScenario("attack")
	ddos, _ := LookupScenario("ddos")
	sched := Overlay(attack, ddos).(Scheduler).Schedule(Params{Duration: 40})
	if len(sched) != 8 {
		t.Fatalf("merged schedule has %d phases, want 8", len(sched))
	}
	for k := 1; k < len(sched); k++ {
		if sched[k].Start < sched[k-1].Start {
			t.Fatalf("schedule out of order at %d: %+v", k, sched)
		}
	}
}

// TestLeavesFlattens: nested composition flattens to its primitives.
func TestLeavesFlattens(t *testing.T) {
	background, _ := LookupScenario("background")
	scan, _ := LookupScenario("scan")
	ddos, _ := LookupScenario("ddos")
	composed := Overlay(background, Sequence(scan, Amplify(ddos, 2)))
	var names []string
	for _, leaf := range Leaves(composed) {
		names = append(names, leaf.Name())
	}
	want := []string{"background", "scan", "ddos"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Leaves = %v, want %v", names, want)
	}
}

// TestMixtureIdentifiesComposedShapes is the analysis half of the
// acceptance criterion: the mixture classifier, fed the sparse CSR of
// the composed run, reports each component shape of
// overlay(background, sequence(scan, ddos)) — and still reads pure
// scenarios as themselves.
func TestMixtureIdentifiesComposedShapes(t *testing.T) {
	net := StandardNetwork()
	zones, err := net.Zones()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSpec("overlay(background, sequence(scan, ddos))")
	if err != nil {
		t.Fatal(err)
	}
	csr, _, err := GenerateCSR(s, net, 42, 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	mixture := patterns.ClassifyMixtureOf(csr, zones)
	found := map[string]bool{}
	for _, c := range mixture {
		found[c.Label] = true
	}
	for _, want := range []string{"background", "scan", "ddos"} {
		if !found[want] {
			t.Errorf("mixture %v missing component %q", mixture, want)
		}
	}
	if len(mixture) == 0 || mixture[0].Label != "background" {
		t.Errorf("dominant component = %v, want background (it carries the volume)", mixture)
	}

	// Pure catalog entries whose name is in the mixture vocabulary
	// must classify as themselves, dominant.
	for _, name := range []string{"background", "scan", "ddos", "worm", "exfil", "flashcrowd", "beacon"} {
		pure, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		csr, _, err := GenerateCSR(pure, net, 42, 0, Params{})
		if err != nil {
			t.Fatal(err)
		}
		got := patterns.ClassifyMixtureOf(csr, zones)
		if len(got) == 0 || got[0].Label != name {
			t.Errorf("pure %s classified as %v", name, got)
		}
	}
}

// TestPlanRunRejectsNonFiniteParams: NaN/Inf parameter fields fail
// with a clear error instead of letting math.Ceil(NaN) produce a
// bogus chunk count.
func TestPlanRunRejectsNonFiniteParams(t *testing.T) {
	net := StandardNetwork()
	s, _ := LookupScenario("background")
	nan := math.NaN()
	for name, p := range map[string]Params{
		"NaN duration":  {Duration: nan, Rate: 4},
		"+Inf duration": {Duration: math.Inf(1), Rate: 4},
		"-Inf duration": {Duration: math.Inf(-1), Rate: 4},
		"NaN rate":      {Duration: 10, Rate: nan},
		"Inf rate":      {Duration: 10, Rate: math.Inf(1)},
	} {
		if _, err := GenerateTrace(s, net, 1, 1, p); err == nil {
			t.Errorf("GenerateTrace accepted %s", name)
		} else if !strings.Contains(err.Error(), "finite") {
			t.Errorf("%s: unhelpful error %q", name, err)
		}
		if _, _, err := GenerateMatrix(s, net, 1, 1, p); err == nil {
			t.Errorf("GenerateMatrix accepted %s", name)
		}
		if _, _, err := GenerateCSR(s, net, 1, 1, p); err == nil {
			t.Errorf("GenerateCSR accepted %s", name)
		}
	}
}

// TestComposedNamesAreStable pins the display-name grammar composed
// scenarios print in catalog listings and module titles.
func TestComposedNamesAreStable(t *testing.T) {
	background, _ := LookupScenario("background")
	scan, _ := LookupScenario("scan")
	ddos, _ := LookupScenario("ddos")
	for _, tc := range []struct {
		s    Scenario
		want string
	}{
		{Overlay(background, scan), "overlay(background,scan)"},
		{SequenceSteps(SeqStep{Scenario: scan, Duration: 10}, SeqStep{Scenario: ddos}), "sequence(scan@10s,ddos)"},
		{Dilate(scan, 2.5), "dilate(scan,2.5)"},
		{Amplify(ddos, 4), "amplify(ddos,4)"},
		{Relabel(scan, map[string]string{"WS1": "WS2", "ADV1": "ADV2"}), "relabel(scan,ADV1=ADV2,WS1=WS2)"},
		{Timed(scan, 10), "scan@10s"},
	} {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}
