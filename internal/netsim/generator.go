package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// The concurrent generation engine. A scenario partitions its
// workload into chunks (see the Scenario contract in catalog.go);
// the engine fans the chunk indices across a worker pool. Each chunk
// is generated with a private RNG seeded from (seed, chunk), so the
// set of events produced is a pure function of the configuration —
// never of the worker count or of scheduling order. Workers
// accumulate into private stores (a per-chunk trace slot, or a
// per-worker COO shard) that are merged order-insensitively at the
// end, which is what makes the aggregate output deterministic.

// Stats summarizes one generation run. All fields are sums over
// chunks, so they are identical for any worker count.
type Stats struct {
	// Events is the number of events generated.
	Events int
	// Packets is the total packet volume generated.
	Packets int
	// Dropped is the packet volume naming hosts outside the network
	// axis (only possible for scenarios emitting foreign names).
	Dropped int
}

// chunkSeed derives the deterministic RNG seed of chunk k from the
// run seed by splitmix64 finalization, decorrelating neighbouring
// chunks.
func chunkSeed(seed int64, chunk int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(chunk+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// chunkRNG returns chunk k's private random source.
func chunkRNG(seed int64, chunk int) *rand.Rand {
	return rand.New(rand.NewSource(chunkSeed(seed, chunk)))
}

// planRun validates the configuration and resolves the chunk and
// worker counts. workers ≤ 0 selects runtime.NumCPU(). NaN and ±Inf
// parameter fields are rejected here, before any chunk math: a NaN
// duration would otherwise flow through math.Ceil into a bogus chunk
// count and fail far from the bad input.
func planRun(s Scenario, net *Network, workers int, p Params) (chunks, nworkers int, pd Params, err error) {
	if s == nil {
		return 0, 0, p, fmt.Errorf("netsim: nil scenario")
	}
	if net == nil {
		return 0, 0, p, fmt.Errorf("netsim: nil network")
	}
	if err := p.validate(); err != nil {
		return 0, 0, p, err
	}
	pd = p.withDefaults()
	chunks = s.Chunks(net, pd)
	if chunks < 1 {
		return 0, 0, pd, fmt.Errorf("netsim: scenario %q reported %d chunks", s.Name(), chunks)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > chunks {
		workers = chunks
	}
	return chunks, workers, pd, nil
}

// runChunks drives the worker pool: each worker claims chunk indices
// from a shared counter and hands (worker, chunk, rng) to fn. The
// first error stops the run and is returned. Cancelling ctx stops the
// claim loop at chunk granularity: no new chunk starts once the
// context is done, in-flight chunks finish, and the context's error
// is reported — the hook the api layer's request cancellation rides
// on.
func runChunks(ctx context.Context, chunks, workers int, seed int64, fn func(worker, chunk int, rng *rand.Rand) error) error {
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				if ctx.Err() != nil {
					return
				}
				k := int(next.Add(1)) - 1
				if k >= chunks {
					return
				}
				if err := fn(w, k, chunkRNG(seed, k)); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// GenerateTrace generates the scenario's full event trace on the
// given number of workers (≤ 0 selects runtime.NumCPU()). The trace
// is identical for any worker count: chunks land in per-chunk slots,
// are concatenated in chunk order, and the final sort is stable on
// equal timestamps.
func GenerateTrace(s Scenario, net *Network, seed int64, workers int, p Params) (Trace, error) {
	return GenerateTraceContext(context.Background(), s, net, seed, workers, p)
}

// GenerateTraceContext is GenerateTrace with cancellation: when ctx
// is cancelled mid-run the worker pool stops claiming chunks and the
// context's error is returned instead of a partial trace.
func GenerateTraceContext(ctx context.Context, s Scenario, net *Network, seed int64, workers int, p Params) (Trace, error) {
	return GenerateTraceArena(ctx, nil, s, net, seed, workers, p)
}

// GenerateTraceArena is GenerateTraceContext with the chunk buffers
// and the trace's backing slab pooled in an arena (nil allocates
// fresh — identical output either way). Chunk buffers recycle as soon
// as they are concatenated; the returned trace's slab belongs to the
// caller, who should hand it back with Arena.ReleaseTrace once every
// view of the trace is dead.
func GenerateTraceArena(ctx context.Context, a *Arena, s Scenario, net *Network, seed int64, workers int, p Params) (Trace, error) {
	chunks, workers, pd, err := planRun(s, net, workers, p)
	if err != nil {
		return nil, err
	}
	hint := divHint(eventBudget(pd), chunks)
	perChunk := make([][]Event, chunks)
	err = runChunks(ctx, chunks, workers, seed, func(_, k int, rng *rand.Rand) error {
		buf := a.GetEvents(hint)
		if err := s.Emit(net, rng, pd, k, func(e Event) { buf = append(buf, e) }); err != nil {
			a.PutEvents(buf)
			return err
		}
		perChunk[k] = buf
		return nil
	})
	if err != nil {
		for _, buf := range perChunk {
			a.PutEvents(buf)
		}
		return nil, err
	}
	total := 0
	for _, buf := range perChunk {
		total += len(buf)
	}
	var trace Trace
	if a != nil {
		trace = Trace(a.GetEvents(total))
	} else {
		trace = make(Trace, 0, total)
	}
	for _, buf := range perChunk {
		trace = append(trace, buf...)
		a.PutEvents(buf)
	}
	trace.Sort()
	return trace, nil
}

// GenerateMatrix generates the scenario and aggregates it straight
// into a sparse traffic matrix, skipping trace materialization: each
// worker streams its chunks' events into a private COO shard, and
// the shards are merged and compacted by matrix.MergeCOO. Because
// duplicate COO coordinates sum on compaction, the merged matrix is
// identical for any worker count. Events naming hosts outside the
// network axis are counted in Stats.Dropped, mirroring
// Trace.Matrix.
func GenerateMatrix(s Scenario, net *Network, seed int64, workers int, p Params) (*matrix.COO, Stats, error) {
	return GenerateMatrixContext(context.Background(), s, net, seed, workers, p)
}

// GenerateMatrixContext is GenerateMatrix with cancellation threaded
// through both sharded loops: the chunk workers stop claiming work
// when ctx is cancelled, and the final shard merge
// (matrix.MergeCOOContext) aborts between shard compactions.
func GenerateMatrixContext(ctx context.Context, s Scenario, net *Network, seed int64, workers int, p Params) (*matrix.COO, Stats, error) {
	return GenerateMatrixArena(ctx, nil, s, net, seed, workers, p)
}

// GenerateMatrixArena is GenerateMatrixContext with the per-worker
// shards and the merged output's storage pooled in an arena (nil
// allocates fresh — identical output either way). The shards release
// into the arena here; the returned COO is arena-backed, so the
// caller must Release it after its last use (ToCSR first when the
// triples need to outlive it — GenerateCSRArena does exactly that).
func GenerateMatrixArena(ctx context.Context, a *Arena, s Scenario, net *Network, seed int64, workers int, p Params) (*matrix.COO, Stats, error) {
	chunks, workers, pd, err := planRun(s, net, workers, p)
	if err != nil {
		return nil, Stats{}, err
	}
	n := net.Len()
	hint := divHint(eventBudget(pd), workers)
	shards := make([]*matrix.COO, workers)
	partial := make([]Stats, workers)
	for w := range shards {
		shards[w] = matrix.NewCOOIn(a.Matrix(), n, n, hint)
	}
	err = runChunks(ctx, chunks, workers, seed, func(w, k int, rng *rand.Rand) error {
		acc, st := shards[w], &partial[w]
		return s.Emit(net, rng, pd, k, func(e Event) {
			st.Events++
			st.Packets += e.Packets
			i, iok := net.Index(e.Src)
			j, jok := net.Index(e.Dst)
			if !iok || !jok {
				st.Dropped += e.Packets
				return
			}
			acc.Add(i, j, e.Packets)
		})
	})
	if err != nil {
		releaseShards(shards)
		return nil, Stats{}, err
	}
	merged, err := matrix.MergeCOOArena(ctx, a.Matrix(), shards...)
	if err != nil {
		releaseShards(shards)
		return nil, Stats{}, err
	}
	// The merge copies every triple, so the shards' slabs are
	// unreachable now.
	releaseShards(shards)
	var stats Stats
	for _, st := range partial {
		stats.Events += st.Events
		stats.Packets += st.Packets
		stats.Dropped += st.Dropped
	}
	return merged, stats, nil
}

// GenerateCSR is the fully sparse end-to-end path: it generates the
// scenario into sharded COO accumulators (GenerateMatrix) and
// converts the merged result straight to CSR. The merge leaves the
// triples compacted, so the conversion is a single linear pass — no
// dense n² materialization happens anywhere between event emission
// and the analysis layer, which consumes the CSR through the
// matrix.Matrix accessor interface.
func GenerateCSR(s Scenario, net *Network, seed int64, workers int, p Params) (*matrix.CSR, Stats, error) {
	return GenerateCSRContext(context.Background(), s, net, seed, workers, p)
}

// GenerateCSRContext is GenerateCSR with cancellation (see
// GenerateMatrixContext).
func GenerateCSRContext(ctx context.Context, s Scenario, net *Network, seed int64, workers int, p Params) (*matrix.CSR, Stats, error) {
	return GenerateCSRArena(ctx, nil, s, net, seed, workers, p)
}

// GenerateCSRArena is GenerateCSRContext with every intermediate —
// worker shards and the merged COO — pooled in an arena (nil
// allocates fresh). The returned CSR's arrays are always freshly
// allocated and permanently the caller's: nothing about it ever
// returns to the pool, so it is safe to cache or stream.
func GenerateCSRArena(ctx context.Context, a *Arena, s Scenario, net *Network, seed int64, workers int, p Params) (*matrix.CSR, Stats, error) {
	coo, stats, err := GenerateMatrixArena(ctx, a, s, net, seed, workers, p)
	if err != nil {
		return nil, Stats{}, err
	}
	csr := coo.ToCSR()
	coo.Release()
	return csr, stats, nil
}
