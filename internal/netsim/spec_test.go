package netsim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecBuildsCombinatorTree(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string // canonical Name() of the parsed scenario
	}{
		{"ddos", "ddos"},
		{"  background ", "background"},
		{"overlay(background, scan)", "overlay(background,scan)"},
		{"overlay(background, sequence(scan@10s, ddos))", "overlay(background,sequence(scan@10s,ddos))"},
		{"sequence(scan @ 10s, ddos, worm)", "sequence(scan@10s,ddos,worm)"},
		{"dilate(beacon, 2.5)", "dilate(beacon,2.5)"},
		{"amplify(exfil, 4)", "amplify(exfil,4)"},
		{"relabel(scan, ADV1=ADV2, ADV2=ADV1)", "relabel(scan,ADV1=ADV2,ADV2=ADV1)"},
		{"scan@5", "scan@5s"},
		{"overlay(amplify(background,2), dilate(sequence(worm, ddos), 2))",
			"overlay(amplify(background,2),dilate(sequence(worm,ddos),2))"},
	} {
		s, err := ParseSpec(tc.src)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.src, err)
			continue
		}
		if got := s.Name(); got != tc.want {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", tc.src, got, tc.want)
		}
	}
}

// TestParseSpecRoundTrips: a composed scenario's Name() is itself a
// valid spec that parses back to the same name — the algebra's
// display form is its source form.
func TestParseSpecRoundTrips(t *testing.T) {
	src := "overlay(background, sequence(scan@10s, relabel(ddos, ADV1=ADV2, ADV2=ADV1)))"
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(s.Name())
	if err != nil {
		t.Fatalf("Name() %q does not re-parse: %v", s.Name(), err)
	}
	if again.Name() != s.Name() {
		t.Errorf("round trip changed name: %q -> %q", s.Name(), again.Name())
	}
}

// TestParseSpecRunsEndToEnd: the acceptance expression generates on
// the sparse path and stays deterministic across worker counts.
func TestParseSpecRunsEndToEnd(t *testing.T) {
	s, err := ParseSpec("overlay(background, sequence(scan, ddos))")
	if err != nil {
		t.Fatal(err)
	}
	net := StandardNetwork()
	base, stats, err := GenerateCSR(s, net, 42, 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || base.NNZ() == 0 {
		t.Fatal("composed spec generated no traffic")
	}
	for _, workers := range []int{4, 16} {
		got, _, err := GenerateCSR(s, net, 42, workers, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: spec-built scenario not deterministic", workers)
		}
	}
	// The merged ground-truth schedule survives composition: the scan
	// slot then the four DDoS component phases.
	sched, ok := s.(Scheduler)
	if !ok {
		t.Fatal("composed spec does not publish a schedule")
	}
	if phases := sched.Schedule(Params{}); len(phases) != 5 {
		t.Errorf("schedule has %d phases, want 5: %+v", len(phases), phases)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":               "",
		"unknown scenario":    "nope",
		"unknown combinator":  "mixup(background, scan)",
		"one-arm overlay":     "overlay(background)",
		"one-arm sequence":    "sequence(ddos)",
		"trailing garbage":    "ddos extra",
		"unbalanced paren":    "overlay(background, scan",
		"bad dilate factor":   "dilate(scan, 0)",
		"bad amplify count":   "amplify(scan, 1.5)",
		"empty relabel":       "relabel(scan)",
		"duplicate relabel":   "relabel(scan, A=B, A=C)",
		"negative duration":   "scan@0",
		"missing combinator)": "dilate(scan,)",
	} {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("%s: ParseSpec(%q) accepted", name, src)
		}
	}
}

func TestRegisterSpecAddsCatalogEntry(t *testing.T) {
	s, err := RegisterSpec("layered-attack-test", "scan hiding in chatter", "overlay(background, scan)")
	if err != nil {
		t.Fatal(err)
	}
	defer delete(registry, "layered-attack-test")
	if s.Name() != "layered-attack-test" {
		t.Errorf("registered name = %q", s.Name())
	}
	got, ok := LookupScenario("layered-attack-test")
	if !ok {
		t.Fatal("registered spec not in catalog")
	}
	if got.Description() != "scan hiding in chatter" {
		t.Errorf("description = %q", got.Description())
	}
	// Registered composites are themselves referencable from specs.
	nested, err := ParseSpec("sequence(layered-attack-test, ddos)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := GenerateCSR(nested, StandardNetwork(), 1, 2, composeParams); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration is rejected like any catalog collision.
	if _, err := RegisterSpec("layered-attack-test", "", "overlay(background, scan)"); err == nil {
		t.Error("duplicate RegisterSpec accepted")
	}
	if _, err := RegisterSpec("broken", "", "overlay("); err == nil {
		t.Error("RegisterSpec accepted a broken spec")
	}
}

func TestLoadSpecReadsFilesAndInlineText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mix.spec")
	if err := os.WriteFile(path, []byte("overlay(background, scan)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadSpec(path, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Name() != "overlay(background,scan)" {
		t.Errorf("file spec parsed to %q", fromFile.Name())
	}
	inline, err := LoadSpec("overlay(background, scan)", os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if inline.Name() != fromFile.Name() {
		t.Errorf("inline parse %q differs from file parse %q", inline.Name(), fromFile.Name())
	}
	// A bare catalog name stays a catalog lookup even with file
	// reading enabled.
	bare, err := LoadSpec("ddos", os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Name() != "ddos" {
		t.Errorf("bare name parsed to %q", bare.Name())
	}
	// A missing or unreadable file reports the I/O failure, not a
	// bogus parse error on the path itself.
	missing := filepath.Join(dir, "missing.spec")
	_, err = LoadSpec(missing, os.ReadFile)
	if err == nil {
		t.Fatal("missing spec file accepted")
	}
	if !strings.Contains(err.Error(), "missing.spec") || !strings.Contains(err.Error(), "readable") {
		t.Errorf("missing-file error %q does not surface the file problem", err)
	}
}
