package voxel

import "fmt"

// RGB is a 24-bit color.
type RGB struct {
	R, G, B uint8
}

// Hex renders the color as "#rrggbb".
func (c RGB) Hex() string { return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B) }

// paletteSize keeps palettes small and consistent: "a limited color
// palette" is part of the paper's recipe for letting a broad audience
// produce assets in a consistent artistic style.
const paletteSize = 16

// Palette maps voxel indices 1..15 to colors (index 0 is Empty and
// unused). Being an array, Palette is comparable and copies by
// value.
type Palette [paletteSize]RGB

// Named palette slots used by the warehouse assets.
const (
	_             = iota // index 0 is Empty
	PaintWood     = 1    // pallet default material
	PaintCardb    = 2    // cardboard box body
	PaintTape     = 3    // box tape stripe
	PaintFloor    = 4    // warehouse floor
	PaintFloorAlt = 5    // floor checker accent
	PaintGrey     = 6    // pallet grey material (color code 0)
	PaintBlue     = 7    // pallet blue material (color code 1)
	PaintRed      = 8    // pallet red material (color code 2)
	PaintGreen    = 9    // label/accent green; extended color code 3
	PaintBlack    = 10   // unknown-color fallback material
	PaintWhite    = 11   // label text
	PaintSteel    = 12   // shelving / wall steel
	PaintYellow   = 13   // extended color code 4
	PaintPurple   = 14   // extended color code 5
)

// DefaultPalette returns the warehouse palette.
func DefaultPalette() Palette {
	var p Palette
	p[PaintWood] = RGB{R: 0xb0, G: 0x7a, B: 0x3c}
	p[PaintCardb] = RGB{R: 0xc9, G: 0xa1, B: 0x66}
	p[PaintTape] = RGB{R: 0x8a, G: 0x6d, B: 0x3b}
	p[PaintFloor] = RGB{R: 0x9a, G: 0x9a, B: 0x9a}
	p[PaintFloorAlt] = RGB{R: 0x84, G: 0x84, B: 0x84}
	p[PaintGrey] = RGB{R: 0x7d, G: 0x7d, B: 0x7d}
	p[PaintBlue] = RGB{R: 0x2b, G: 0x5f, B: 0xd9}
	p[PaintRed] = RGB{R: 0xd9, G: 0x2b, B: 0x2b}
	p[PaintGreen] = RGB{R: 0x2b, G: 0xa8, B: 0x4a}
	p[PaintBlack] = RGB{R: 0x18, G: 0x18, B: 0x18}
	p[PaintWhite] = RGB{R: 0xf2, G: 0xf2, B: 0xf2}
	p[PaintSteel] = RGB{R: 0x5c, G: 0x6b, B: 0x73}
	p[PaintYellow] = RGB{R: 0xd9, G: 0xc1, B: 0x2b}
	p[PaintPurple] = RGB{R: 0x8e, G: 0x2b, B: 0xd9}
	return p
}

// MaterialForColorCode maps a module color code to the pallet
// material palette index: the paper's grey/blue/red (0–2) plus the
// extended green/yellow/purple range (3–5) from its "expanding the
// range of colors and materials" future-work item, with the game's
// black fallback for anything else — the Go port of the paper's
// change_pallet_color match statement, extended.
func MaterialForColorCode(code int) uint8 {
	switch code {
	case 0:
		return PaintGrey
	case 1:
		return PaintBlue
	case 2:
		return PaintRed
	case 3:
		return PaintGreen
	case 4:
		return PaintYellow
	case 5:
		return PaintPurple
	default:
		return PaintBlack
	}
}
