package voxel

// Mesh generation converts a voxel model into colored quads for OBJ
// export and rendering. Two strategies are provided: Naive emits one
// quad per exposed voxel face; Greedy merges coplanar same-color
// faces into larger rectangles (the classic greedy-meshing
// optimization). The ablation bench compares their output sizes and
// costs; both produce the same covered area.

// Vec3 is an integer lattice point (voxel corner coordinates).
type Vec3 struct {
	X, Y, Z int
}

// Axis identifies the face normal direction of a quad.
type Axis int

// The six face directions.
const (
	NegX Axis = iota
	PosX
	NegY
	PosY
	NegZ
	PosZ
)

// Quad is one colored rectangle of a mesh. Origin is the minimum
// corner; DU and DV are the edge vectors spanning the rectangle.
type Quad struct {
	Origin Vec3
	DU, DV Vec3
	Axis   Axis
	Color  uint8
}

// Mesh is a list of colored quads plus the palette they index.
type Mesh struct {
	Quads   []Quad
	Palette Palette
}

// Area returns the total covered face area of the mesh in voxel
// units. Naive and greedy meshes of the same model cover equal
// areas.
func (m *Mesh) Area() int {
	total := 0
	for _, q := range m.Quads {
		total += quadArea(q)
	}
	return total
}

// quadArea computes |DU|·|DV| for axis-aligned edge vectors.
func quadArea(q Quad) int {
	du := abs(q.DU.X) + abs(q.DU.Y) + abs(q.DU.Z)
	dv := abs(q.DV.X) + abs(q.DV.Y) + abs(q.DV.Z)
	return du * dv
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// faceDelta gives the neighbour offset for each axis.
var faceDelta = [6][3]int{
	NegX: {-1, 0, 0}, PosX: {1, 0, 0},
	NegY: {0, -1, 0}, PosY: {0, 1, 0},
	NegZ: {0, 0, -1}, PosZ: {0, 0, 1},
}

// NaiveMesh emits one quad for every voxel face not covered by a
// neighbouring voxel.
func NaiveMesh(m *Model) *Mesh {
	out := &Mesh{Palette: m.Palette()}
	w, h, d := m.Size()
	for y := 0; y < h; y++ {
		for z := 0; z < d; z++ {
			for x := 0; x < w; x++ {
				c := m.At(x, y, z)
				if c == Empty {
					continue
				}
				for axis := NegX; axis <= PosZ; axis++ {
					delta := faceDelta[axis]
					if m.At(x+delta[0], y+delta[1], z+delta[2]) != Empty {
						continue
					}
					out.Quads = append(out.Quads, unitQuad(x, y, z, axis, c))
				}
			}
		}
	}
	return out
}

// unitQuad builds the 1×1 quad for one voxel face.
func unitQuad(x, y, z int, axis Axis, color uint8) Quad {
	q := Quad{Axis: axis, Color: color}
	switch axis {
	case NegX:
		q.Origin = Vec3{x, y, z}
		q.DU, q.DV = Vec3{0, 0, 1}, Vec3{0, 1, 0}
	case PosX:
		q.Origin = Vec3{x + 1, y, z}
		q.DU, q.DV = Vec3{0, 1, 0}, Vec3{0, 0, 1}
	case NegY:
		q.Origin = Vec3{x, y, z}
		q.DU, q.DV = Vec3{1, 0, 0}, Vec3{0, 0, 1}
	case PosY:
		q.Origin = Vec3{x, y + 1, z}
		q.DU, q.DV = Vec3{0, 0, 1}, Vec3{1, 0, 0}
	case NegZ:
		q.Origin = Vec3{x, y, z}
		q.DU, q.DV = Vec3{0, 1, 0}, Vec3{1, 0, 0}
	case PosZ:
		q.Origin = Vec3{x, y, z + 1}
		q.DU, q.DV = Vec3{1, 0, 0}, Vec3{0, 1, 0}
	}
	return q
}

// GreedyMesh merges exposed coplanar faces of equal color into
// maximal rectangles, slice by slice along each axis.
func GreedyMesh(m *Model) *Mesh {
	out := &Mesh{Palette: m.Palette()}
	w, h, d := m.Size()
	dims := [3]int{w, h, d}
	// For each of the three axis directions, sweep slices
	// perpendicular to the axis; each slice is a 2D mask of exposed
	// faces to merge.
	for axisDim := 0; axisDim < 3; axisDim++ {
		uDim, vDim := (axisDim+1)%3, (axisDim+2)%3
		for _, positive := range []bool{false, true} {
			axis := sliceAxis(axisDim, positive)
			mask := make([]uint8, dims[uDim]*dims[vDim])
			for slice := 0; slice < dims[axisDim]; slice++ {
				// Build the mask of exposed faces in this slice.
				for v := 0; v < dims[vDim]; v++ {
					for u := 0; u < dims[uDim]; u++ {
						var pos [3]int
						pos[axisDim], pos[uDim], pos[vDim] = slice, u, v
						c := m.At(pos[0], pos[1], pos[2])
						if c == Empty {
							mask[v*dims[uDim]+u] = Empty
							continue
						}
						var npos [3]int = pos
						if positive {
							npos[axisDim]++
						} else {
							npos[axisDim]--
						}
						if m.At(npos[0], npos[1], npos[2]) != Empty {
							mask[v*dims[uDim]+u] = Empty
							continue
						}
						mask[v*dims[uDim]+u] = c
					}
				}
				out.Quads = append(out.Quads, mergeMask(mask, dims[uDim], dims[vDim], axisDim, uDim, vDim, slice, positive, axis)...)
			}
		}
	}
	return out
}

// sliceAxis maps a dimension index and direction to the Axis enum.
func sliceAxis(dim int, positive bool) Axis {
	switch dim {
	case 0:
		if positive {
			return PosX
		}
		return NegX
	case 1:
		if positive {
			return PosY
		}
		return NegY
	default:
		if positive {
			return PosZ
		}
		return NegZ
	}
}

// mergeMask greedily covers the non-empty cells of a 2D mask with
// maximal same-color rectangles and emits one quad per rectangle.
func mergeMask(mask []uint8, uLen, vLen, axisDim, uDim, vDim, slice int, positive bool, axis Axis) []Quad {
	var quads []Quad
	used := make([]bool, len(mask))
	for v := 0; v < vLen; v++ {
		for u := 0; u < uLen; u++ {
			idx := v*uLen + u
			if used[idx] || mask[idx] == Empty {
				continue
			}
			color := mask[idx]
			// Grow along u.
			du := 1
			for u+du < uLen && !used[idx+du] && mask[idx+du] == color {
				du++
			}
			// Grow along v while every cell in the row matches.
			dv := 1
			for v+dv < vLen {
				ok := true
				for k := 0; k < du; k++ {
					probe := (v+dv)*uLen + u + k
					if used[probe] || mask[probe] != color {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				dv++
			}
			for dy := 0; dy < dv; dy++ {
				for dx := 0; dx < du; dx++ {
					used[(v+dy)*uLen+u+dx] = true
				}
			}
			var origin [3]int
			origin[axisDim], origin[uDim], origin[vDim] = slice, u, v
			if positive {
				origin[axisDim]++
			}
			var duVec, dvVec [3]int
			duVec[uDim] = du
			dvVec[vDim] = dv
			quads = append(quads, Quad{
				Origin: Vec3{origin[0], origin[1], origin[2]},
				DU:     Vec3{duVec[0], duVec[1], duVec[2]},
				DV:     Vec3{dvVec[0], dvVec[1], dvVec[2]},
				Axis:   axis,
				Color:  color,
			})
		}
	}
	return quads
}
