package voxel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// A compact binary container for voxel models, standing in for the
// .vox files MagicaVoxel saves. Layout (little endian):
//
//	magic   [4]byte  "TWVX"
//	version uint16   1
//	w,h,d   uint16 each
//	palette 16 × 3 bytes RGB
//	cells   run-length encoded: pairs of (count uint16, color uint8)
//
// Run-length encoding suits voxel art: large same-color and empty
// runs dominate.

var codecMagic = [4]byte{'T', 'W', 'V', 'X'}

// codecVersion is the current container version.
const codecVersion = 1

// Encode serializes the model.
func Encode(w io.Writer, m *Model) error {
	var b bytes.Buffer
	b.Write(codecMagic[:])
	width, height, depth := m.Size()
	for _, v := range []uint16{codecVersion, uint16(width), uint16(height), uint16(depth)} {
		if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("voxel: encode: %w", err)
		}
	}
	for _, c := range m.Palette() {
		b.Write([]byte{c.R, c.G, c.B})
	}
	// Run-length encode cells in storage order.
	flat := make([]uint8, 0, width*height*depth)
	for y := 0; y < height; y++ {
		for z := 0; z < depth; z++ {
			for x := 0; x < width; x++ {
				flat = append(flat, m.At(x, y, z))
			}
		}
	}
	for i := 0; i < len(flat); {
		color := flat[i]
		run := 1
		for i+run < len(flat) && flat[i+run] == color && run < 0xffff {
			run++
		}
		if err := binary.Write(&b, binary.LittleEndian, uint16(run)); err != nil {
			return fmt.Errorf("voxel: encode: %w", err)
		}
		b.WriteByte(color)
		i += run
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Decode reads a model serialized by Encode. It validates the magic,
// version, dimensions, and total cell count.
func Decode(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("voxel: decode: %w", err)
	}
	buf := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(buf, magic[:]); err != nil {
		return nil, fmt.Errorf("voxel: decode: short header: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("voxel: decode: bad magic %q", magic)
	}
	var version, w16, h16, d16 uint16
	for _, p := range []*uint16{&version, &w16, &h16, &d16} {
		if err := binary.Read(buf, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("voxel: decode: short header: %w", err)
		}
	}
	if version != codecVersion {
		return nil, fmt.Errorf("voxel: decode: unsupported version %d", version)
	}
	w, h, d := int(w16), int(h16), int(d16)
	if w == 0 || h == 0 || d == 0 {
		return nil, fmt.Errorf("voxel: decode: zero dimension %dx%dx%d", w, h, d)
	}
	m := New(w, h, d)
	var p Palette
	for i := range p {
		var rgb [3]byte
		if _, err := io.ReadFull(buf, rgb[:]); err != nil {
			return nil, fmt.Errorf("voxel: decode: short palette: %w", err)
		}
		p[i] = RGB{R: rgb[0], G: rgb[1], B: rgb[2]}
	}
	m.SetPalette(p)
	total := w * h * d
	flat := make([]uint8, 0, total)
	for len(flat) < total {
		var run uint16
		if err := binary.Read(buf, binary.LittleEndian, &run); err != nil {
			return nil, fmt.Errorf("voxel: decode: short cell data: %w", err)
		}
		color, err := buf.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("voxel: decode: short cell data: %w", err)
		}
		if int(run) == 0 || len(flat)+int(run) > total {
			return nil, fmt.Errorf("voxel: decode: run of %d overflows %d cells", run, total)
		}
		for k := 0; k < int(run); k++ {
			flat = append(flat, color)
		}
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("voxel: decode: %d trailing bytes", buf.Len())
	}
	i := 0
	for y := 0; y < h; y++ {
		for z := 0; z < d; z++ {
			for x := 0; x < w; x++ {
				if flat[i] != Empty {
					m.Set(x, y, z, flat[i])
				}
				i++
			}
		}
	}
	return m, nil
}
