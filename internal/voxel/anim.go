package voxel

import "fmt"

// Animation is MagicaVoxel-style "simple animation": a looping
// sequence of voxel frames (Table II's animation row). The game uses
// it for the box-drop effect when a packet is placed.
type Animation struct {
	// Name identifies the animation.
	Name string
	// Frames are the voxel models in display order.
	Frames []*Model
	// FrameTime is seconds per frame.
	FrameTime float64
}

// NewAnimation validates and builds an animation. All frames must
// share dimensions.
func NewAnimation(name string, frameTime float64, frames ...*Model) (*Animation, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("voxel: animation %q has no frames", name)
	}
	if frameTime <= 0 {
		return nil, fmt.Errorf("voxel: animation %q frame time must be positive", name)
	}
	w0, h0, d0 := frames[0].Size()
	for i, f := range frames[1:] {
		w, h, d := f.Size()
		if w != w0 || h != h0 || d != d0 {
			return nil, fmt.Errorf("voxel: animation %q frame %d is %dx%dx%d, want %dx%dx%d", name, i+1, w, h, d, w0, h0, d0)
		}
	}
	return &Animation{Name: name, Frames: frames, FrameTime: frameTime}, nil
}

// Len returns the frame count.
func (a *Animation) Len() int { return len(a.Frames) }

// Duration returns one loop's length in seconds.
func (a *Animation) Duration() float64 {
	return float64(len(a.Frames)) * a.FrameTime
}

// FrameAt returns the frame displayed at time t, looping.
func (a *Animation) FrameAt(t float64) *Model {
	if t < 0 {
		t = 0
	}
	idx := int(t/a.FrameTime) % len(a.Frames)
	return a.Frames[idx]
}

// BoxDropAnimation builds the packet-placement effect: a box
// descending onto the pallet over the given number of frames.
func BoxDropAnimation(frames int) (*Animation, error) {
	if frames < 2 {
		return nil, fmt.Errorf("voxel: box drop needs at least 2 frames, got %d", frames)
	}
	box := Box()
	height := BoxSize + frames
	var seq []*Model
	for f := 0; f < frames; f++ {
		frame := New(BoxSize, height, BoxSize)
		// The box starts high and lands at y=0 on the last frame.
		drop := (frames - 1 - f) * (height - BoxSize) / (frames - 1)
		for y := 0; y < BoxSize; y++ {
			for z := 0; z < BoxSize; z++ {
				for x := 0; x < BoxSize; x++ {
					if c := box.At(x, y, z); c != Empty {
						frame.Set(x, y+drop, z, c)
					}
				}
			}
		}
		seq = append(seq, frame)
	}
	return NewAnimation("box-drop", 0.05, seq...)
}
