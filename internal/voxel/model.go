// Package voxel is the MagicaVoxel substitute: LEGO-style voxel
// models with paint-by-voxel coloring, simple palettes, face-culled
// and greedily-merged mesh generation, Wavefront OBJ/MTL export (the
// interchange format Table II requires), and a compact binary codec.
//
// Models use a right-handed grid: X is width, Y is height (up), and Z
// is depth. Each cell stores a palette index; index 0 is empty.
package voxel

import "fmt"

// Empty is the palette index meaning "no voxel here".
const Empty = 0

// Model is a W×H×D voxel grid of palette indices.
type Model struct {
	w, h, d int
	cells   []uint8
	palette Palette
}

// New returns an empty model of the given dimensions with the
// default palette.
func New(w, h, d int) *Model {
	if w <= 0 || h <= 0 || d <= 0 {
		panic(fmt.Sprintf("voxel: invalid dimensions %dx%dx%d", w, h, d))
	}
	return &Model{w: w, h: h, d: d, cells: make([]uint8, w*h*d), palette: DefaultPalette()}
}

// Size returns the model's width, height, and depth.
func (m *Model) Size() (w, h, d int) { return m.w, m.h, m.d }

// Palette returns the model's palette.
func (m *Model) Palette() Palette { return m.palette }

// SetPalette replaces the model's palette.
func (m *Model) SetPalette(p Palette) { m.palette = p }

// InBounds reports whether (x,y,z) is inside the grid.
func (m *Model) InBounds(x, y, z int) bool {
	return x >= 0 && x < m.w && y >= 0 && y < m.h && z >= 0 && z < m.d
}

// index returns the cell offset, panicking out of bounds.
func (m *Model) index(x, y, z int) int {
	if !m.InBounds(x, y, z) {
		panic(fmt.Sprintf("voxel: (%d,%d,%d) out of bounds %dx%dx%d", x, y, z, m.w, m.h, m.d))
	}
	return (y*m.d+z)*m.w + x
}

// At returns the palette index at (x,y,z); Empty outside the grid so
// neighbour checks at the boundary read naturally.
func (m *Model) At(x, y, z int) uint8 {
	if !m.InBounds(x, y, z) {
		return Empty
	}
	return m.cells[m.index(x, y, z)]
}

// Set places a voxel of the given palette index ("place colored
// voxel" in Table II's terms).
func (m *Model) Set(x, y, z int, color uint8) {
	m.cells[m.index(x, y, z)] = color
}

// Clear removes the voxel at (x,y,z).
func (m *Model) Clear(x, y, z int) { m.Set(x, y, z, Empty) }

// Fill sets every cell in the inclusive box [x0,x1]×[y0,y1]×[z0,z1].
func (m *Model) Fill(x0, y0, z0, x1, y1, z1 int, color uint8) {
	for y := y0; y <= y1; y++ {
		for z := z0; z <= z1; z++ {
			for x := x0; x <= x1; x++ {
				m.Set(x, y, z, color)
			}
		}
	}
}

// Count returns the number of non-empty voxels.
func (m *Model) Count() int {
	n := 0
	for _, c := range m.cells {
		if c != Empty {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := New(m.w, m.h, m.d)
	copy(c.cells, m.cells)
	c.palette = m.palette
	return c
}

// Equal reports whether two models have identical dimensions, cells,
// and palettes.
func (m *Model) Equal(o *Model) bool {
	if m.w != o.w || m.h != o.h || m.d != o.d || m.palette != o.palette {
		return false
	}
	for i, c := range m.cells {
		if o.cells[i] != c {
			return false
		}
	}
	return true
}

// Repaint replaces every voxel of index from with index to: the
// mechanism behind the game's pallet material swap.
func (m *Model) Repaint(from, to uint8) {
	for i, c := range m.cells {
		if c == from {
			m.cells[i] = to
		}
	}
}

// Bounds returns the tight bounding box of non-empty voxels as
// inclusive minimums and maximums, and ok=false for an all-empty
// model.
func (m *Model) Bounds() (minX, minY, minZ, maxX, maxY, maxZ int, ok bool) {
	minX, minY, minZ = m.w, m.h, m.d
	maxX, maxY, maxZ = -1, -1, -1
	for y := 0; y < m.h; y++ {
		for z := 0; z < m.d; z++ {
			for x := 0; x < m.w; x++ {
				if m.At(x, y, z) == Empty {
					continue
				}
				if x < minX {
					minX = x
				}
				if y < minY {
					minY = y
				}
				if z < minZ {
					minZ = z
				}
				if x > maxX {
					maxX = x
				}
				if y > maxY {
					maxY = y
				}
				if z > maxZ {
					maxZ = z
				}
			}
		}
	}
	return minX, minY, minZ, maxX, maxY, maxZ, maxX >= 0
}
