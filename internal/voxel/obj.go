package voxel

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Wavefront OBJ/MTL export. "Can export to .obj: Yes" is the Table II
// capability that lets assets flow from the modeling tool into the
// game engine; this writer produces files loadable by Godot, Blender,
// or any OBJ consumer.

// WriteOBJ writes the mesh as an OBJ document referencing material
// names "paintN" defined by WriteMTL. Vertices are deduplicated;
// faces are grouped by material. The name parameter becomes the
// object name.
func WriteOBJ(w io.Writer, mesh *Mesh, name, mtlFile string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Traffic Warehouse voxel export\no %s\n", sanitizeName(name))
	if mtlFile != "" {
		fmt.Fprintf(&b, "mtllib %s\n", mtlFile)
	}

	// Deduplicate vertices.
	vertexID := make(map[Vec3]int)
	var vertices []Vec3
	idOf := func(v Vec3) int {
		if id, ok := vertexID[v]; ok {
			return id
		}
		id := len(vertices) + 1 // OBJ indices are 1-based
		vertexID[v] = id
		vertices = append(vertices, v)
		return id
	}
	type face struct {
		color uint8
		ids   [4]int
	}
	faces := make([]face, 0, len(mesh.Quads))
	for _, q := range mesh.Quads {
		corners := [4]Vec3{
			q.Origin,
			{q.Origin.X + q.DU.X, q.Origin.Y + q.DU.Y, q.Origin.Z + q.DU.Z},
			{q.Origin.X + q.DU.X + q.DV.X, q.Origin.Y + q.DU.Y + q.DV.Y, q.Origin.Z + q.DU.Z + q.DV.Z},
			{q.Origin.X + q.DV.X, q.Origin.Y + q.DV.Y, q.Origin.Z + q.DV.Z},
		}
		var f face
		f.color = q.Color
		for i, c := range corners {
			f.ids[i] = idOf(c)
		}
		faces = append(faces, f)
	}
	for _, v := range vertices {
		fmt.Fprintf(&b, "v %d %d %d\n", v.X, v.Y, v.Z)
	}
	// Group faces by material for compact usemtl runs.
	sort.SliceStable(faces, func(i, j int) bool { return faces[i].color < faces[j].color })
	current := uint8(255)
	for _, f := range faces {
		if f.color != current {
			current = f.color
			fmt.Fprintf(&b, "usemtl paint%d\n", current)
		}
		fmt.Fprintf(&b, "f %d %d %d %d\n", f.ids[0], f.ids[1], f.ids[2], f.ids[3])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMTL writes material definitions for every palette index used
// by the mesh.
func WriteMTL(w io.Writer, mesh *Mesh) error {
	used := make(map[uint8]bool)
	for _, q := range mesh.Quads {
		used[q.Color] = true
	}
	colors := make([]int, 0, len(used))
	for c := range used {
		colors = append(colors, int(c))
	}
	sort.Ints(colors)
	var b strings.Builder
	b.WriteString("# Traffic Warehouse voxel materials\n")
	for _, c := range colors {
		rgb := mesh.Palette[c]
		fmt.Fprintf(&b, "newmtl paint%d\nKd %.4f %.4f %.4f\n",
			c, float64(rgb.R)/255, float64(rgb.G)/255, float64(rgb.B)/255)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeName strips whitespace from an object name.
func sanitizeName(name string) string {
	fields := strings.Fields(name)
	if len(fields) == 0 {
		return "model"
	}
	return strings.Join(fields, "_")
}
