package voxel

// Built-in warehouse assets in the spirit of the paper's
// MagicaVoxel set: "the shipping warehouse metaphor lends itself to a
// simple 3D design (floor, pallets, and boxes)". Dimensions are in
// voxels; the renderer treats one pallet footprint as one matrix
// cell.

// PalletSize is the footprint (width and depth) of a pallet model.
const PalletSize = 8

// Pallet returns a shipping-pallet model: two deck layers of slats
// over three bearers, painted with the given material index
// (PaintWood for the default material, or a MaterialForColorCode
// result for the colored state).
func Pallet(material uint8) *Model {
	m := New(PalletSize, 3, PalletSize)
	// Bottom bearers: three rails along Z.
	for _, x := range []int{0, PalletSize/2 - 1, PalletSize - 2} {
		m.Fill(x, 0, 0, x+1, 0, PalletSize-1, material)
	}
	// Middle spacer blocks on each bearer.
	for _, x := range []int{0, PalletSize/2 - 1, PalletSize - 2} {
		for _, z := range []int{0, PalletSize/2 - 1, PalletSize - 2} {
			m.Fill(x, 1, z, x+1, 1, z+1, material)
		}
	}
	// Top deck: slats along X with one-voxel gaps.
	for z := 0; z < PalletSize; z += 2 {
		m.Fill(0, 2, z, PalletSize-1, 2, z, material)
	}
	return m
}

// BoxSize is the edge length of a packet box model.
const BoxSize = 4

// Box returns a cardboard packet box with a tape stripe across the
// top: the unit of traffic in the game (one box = one packet).
func Box() *Model {
	m := New(BoxSize, BoxSize, BoxSize)
	m.Fill(0, 0, 0, BoxSize-1, BoxSize-1, BoxSize-1, PaintCardb)
	// Tape stripe across the top, wrapping down two sides.
	mid := BoxSize / 2
	m.Fill(0, BoxSize-1, mid-1, BoxSize-1, BoxSize-1, mid-1, PaintTape)
	m.Fill(0, 0, mid-1, 0, BoxSize-1, mid-1, PaintTape)
	m.Fill(BoxSize-1, 0, mid-1, BoxSize-1, BoxSize-1, mid-1, PaintTape)
	return m
}

// FloorTile returns one checkerboard warehouse floor tile; alt
// selects the accent shade.
func FloorTile(alt bool) *Model {
	m := New(PalletSize, 1, PalletSize)
	color := uint8(PaintFloor)
	if alt {
		color = PaintFloorAlt
	}
	m.Fill(0, 0, 0, PalletSize-1, 0, PalletSize-1, color)
	return m
}

// LabelPlinth returns the small steel stand that carries an axis
// label in the 3D view.
func LabelPlinth() *Model {
	m := New(PalletSize, 4, 2)
	m.Fill(PalletSize/2-1, 0, 0, PalletSize/2, 2, 1, PaintSteel)
	m.Fill(0, 3, 0, PalletSize-1, 3, 1, PaintWhite)
	return m
}

// BuiltinAssets returns the named asset set the game ships with.
func BuiltinAssets() map[string]*Model {
	return map[string]*Model{
		"pallet":       Pallet(PaintWood),
		"pallet_grey":  Pallet(PaintGrey),
		"pallet_blue":  Pallet(PaintBlue),
		"pallet_red":   Pallet(PaintRed),
		"pallet_black": Pallet(PaintBlack),
		"box":          Box(),
		"floor":        FloorTile(false),
		"floor_alt":    FloorTile(true),
		"label_plinth": LabelPlinth(),
	}
}
