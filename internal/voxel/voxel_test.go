package voxel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestModelSetAtClear(t *testing.T) {
	m := New(3, 4, 5)
	if w, h, d := m.Size(); w != 3 || h != 4 || d != 5 {
		t.Fatalf("size %dx%dx%d", w, h, d)
	}
	m.Set(1, 2, 3, PaintRed)
	if m.At(1, 2, 3) != PaintRed {
		t.Error("Set/At wrong")
	}
	m.Clear(1, 2, 3)
	if m.At(1, 2, 3) != Empty {
		t.Error("Clear failed")
	}
}

func TestModelAtOutOfBoundsIsEmpty(t *testing.T) {
	m := New(2, 2, 2)
	if m.At(-1, 0, 0) != Empty || m.At(0, 5, 0) != Empty {
		t.Error("out-of-bounds At should read Empty")
	}
}

func TestModelSetOutOfBoundsPanics(t *testing.T) {
	m := New(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Set(2, 0, 0, 1)
}

func TestFillAndCount(t *testing.T) {
	m := New(4, 4, 4)
	m.Fill(0, 0, 0, 1, 1, 1, PaintWood)
	if m.Count() != 8 {
		t.Errorf("Count = %d, want 8", m.Count())
	}
}

func TestCloneEqualRepaint(t *testing.T) {
	m := New(2, 2, 2)
	m.Set(0, 0, 0, PaintBlue)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone differs")
	}
	c.Repaint(PaintBlue, PaintRed)
	if m.Equal(c) || c.At(0, 0, 0) != PaintRed {
		t.Error("repaint wrong or aliased")
	}
}

func TestBounds(t *testing.T) {
	m := New(5, 5, 5)
	if _, _, _, _, _, _, ok := m.Bounds(); ok {
		t.Error("empty model reported bounds")
	}
	m.Set(1, 2, 3, 1)
	m.Set(3, 2, 1, 1)
	minX, minY, minZ, maxX, maxY, maxZ, ok := m.Bounds()
	if !ok || minX != 1 || minY != 2 || minZ != 1 || maxX != 3 || maxY != 2 || maxZ != 3 {
		t.Errorf("bounds = %d,%d,%d..%d,%d,%d", minX, minY, minZ, maxX, maxY, maxZ)
	}
}

func TestMaterialForColorCode(t *testing.T) {
	cases := map[int]uint8{0: PaintGrey, 1: PaintBlue, 2: PaintRed, 7: PaintBlack, -1: PaintBlack}
	for code, want := range cases {
		if got := MaterialForColorCode(code); got != want {
			t.Errorf("MaterialForColorCode(%d) = %d, want %d", code, got, want)
		}
	}
}

func TestPaletteHex(t *testing.T) {
	if got := (RGB{R: 255, G: 0, B: 16}).Hex(); got != "#ff0010" {
		t.Errorf("Hex = %q", got)
	}
}

func TestAssetsNonEmpty(t *testing.T) {
	for name, m := range BuiltinAssets() {
		if m.Count() == 0 {
			t.Errorf("asset %q is empty", name)
		}
	}
}

func TestPalletUsesMaterial(t *testing.T) {
	p := Pallet(PaintRed)
	seen := map[uint8]bool{}
	w, h, d := p.Size()
	for y := 0; y < h; y++ {
		for z := 0; z < d; z++ {
			for x := 0; x < w; x++ {
				if c := p.At(x, y, z); c != Empty {
					seen[c] = true
				}
			}
		}
	}
	if len(seen) != 1 || !seen[PaintRed] {
		t.Errorf("pallet colors = %v, want only red", seen)
	}
}

// TestMeshAreasEqual: naive and greedy meshes cover the same face
// area — greedy merging must not create or lose surface.
func TestMeshAreasEqual(t *testing.T) {
	for name, m := range BuiltinAssets() {
		naive := NaiveMesh(m)
		greedy := GreedyMesh(m)
		if naive.Area() != greedy.Area() {
			t.Errorf("%s: naive area %d != greedy area %d", name, naive.Area(), greedy.Area())
		}
		if len(greedy.Quads) > len(naive.Quads) {
			t.Errorf("%s: greedy produced more quads (%d) than naive (%d)", name, len(greedy.Quads), len(naive.Quads))
		}
	}
}

func TestGreedyMergesSolidBlock(t *testing.T) {
	m := New(4, 4, 4)
	m.Fill(0, 0, 0, 3, 3, 3, PaintWood)
	greedy := GreedyMesh(m)
	// A solid single-color cube merges to exactly 6 quads.
	if len(greedy.Quads) != 6 {
		t.Errorf("solid cube greedy quads = %d, want 6", len(greedy.Quads))
	}
	naive := NaiveMesh(m)
	// 6 faces × 16 unit quads.
	if len(naive.Quads) != 96 {
		t.Errorf("solid cube naive quads = %d, want 96", len(naive.Quads))
	}
}

func TestMeshCullsInteriorFaces(t *testing.T) {
	m := New(2, 1, 1)
	m.Set(0, 0, 0, PaintWood)
	m.Set(1, 0, 0, PaintWood)
	naive := NaiveMesh(m)
	// Two cubes sharing a face: 12 - 2 hidden = 10 faces.
	if len(naive.Quads) != 10 {
		t.Errorf("quads = %d, want 10", len(naive.Quads))
	}
}

// TestGreedyMeshAreaRandomProperty compares areas on random models.
func TestGreedyMeshAreaRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		m := New(4, 4, 4)
		for k := 0; k < 20; k++ {
			m.Set(rng.Intn(4), rng.Intn(4), rng.Intn(4), uint8(1+rng.Intn(5)))
		}
		if NaiveMesh(m).Area() != GreedyMesh(m).Area() {
			t.Fatalf("trial %d: area mismatch", trial)
		}
	}
}

func TestOBJExportStructure(t *testing.T) {
	mesh := GreedyMesh(Box())
	var obj, mtl bytes.Buffer
	if err := WriteOBJ(&obj, mesh, "test box", "materials.mtl"); err != nil {
		t.Fatal(err)
	}
	if err := WriteMTL(&mtl, mesh); err != nil {
		t.Fatal(err)
	}
	text := obj.String()
	for _, want := range []string{"o test_box", "mtllib materials.mtl", "v ", "f ", "usemtl paint"} {
		if !strings.Contains(text, want) {
			t.Errorf("OBJ missing %q", want)
		}
	}
	// Face indices must be in range of emitted vertices.
	vCount := strings.Count(text, "\nv ")
	if strings.HasPrefix(text, "v ") {
		vCount++
	}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "f ") {
			continue
		}
		var a, b, c, d int
		if _, err := fmtSscanf(line, &a, &b, &c, &d); err != nil {
			t.Fatalf("bad face line %q: %v", line, err)
		}
		for _, idx := range []int{a, b, c, d} {
			if idx < 1 || idx > vCount {
				t.Fatalf("face index %d out of range 1..%d", idx, vCount)
			}
		}
	}
	if !strings.Contains(mtl.String(), "Kd ") {
		t.Error("MTL missing diffuse colors")
	}
}

// fmtSscanf isolates the fmt dependency for face parsing.
func fmtSscanf(line string, a, b, c, d *int) (int, error) {
	return sscanf(line, a, b, c, d)
}

func TestCodecRoundTrip(t *testing.T) {
	for name, m := range BuiltinAssets() {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !m.Equal(back) {
			t.Errorf("%s: codec round trip changed the model", name)
		}
	}
}

func TestCodecRoundTripRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		m := New(1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6))
		w, h, d := m.Size()
		for k := 0; k < rng.Intn(30); k++ {
			m.Set(rng.Intn(w), rng.Intn(h), rng.Intn(d), uint8(rng.Intn(16)))
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Box()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0xff),
		"short header": good[:6],
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAnimation(t *testing.T) {
	anim, err := BoxDropAnimation(5)
	if err != nil {
		t.Fatal(err)
	}
	if anim.Len() != 5 {
		t.Errorf("frames = %d", anim.Len())
	}
	if anim.Duration() <= 0 {
		t.Error("non-positive duration")
	}
	first := anim.FrameAt(0)
	last := anim.FrameAt(anim.Duration() - 0.001)
	if first.Equal(last) {
		t.Error("animation frames identical")
	}
	// The box lands at y=0 on the final frame.
	_, minY, _, _, _, _, ok := last.Bounds()
	if !ok || minY != 0 {
		t.Errorf("final frame minY = %d, want 0", minY)
	}
	// Looping: beyond one duration wraps around.
	if !anim.FrameAt(anim.Duration() * 2).Equal(anim.FrameAt(0)) {
		t.Error("animation does not loop")
	}
	if !anim.FrameAt(-5).Equal(anim.FrameAt(0)) {
		t.Error("negative time should clamp to frame 0")
	}
}

func TestAnimationValidation(t *testing.T) {
	if _, err := NewAnimation("x", 0.1); err == nil {
		t.Error("empty animation accepted")
	}
	if _, err := NewAnimation("x", 0, New(1, 1, 1)); err == nil {
		t.Error("zero frame time accepted")
	}
	if _, err := NewAnimation("x", 0.1, New(1, 1, 1), New(2, 1, 1)); err == nil {
		t.Error("mismatched frame sizes accepted")
	}
	if _, err := BoxDropAnimation(1); err == nil {
		t.Error("single-frame drop accepted")
	}
}
