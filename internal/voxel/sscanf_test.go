package voxel

import "fmt"

// sscanf parses an OBJ face line in tests.
func sscanf(line string, a, b, c, d *int) (int, error) {
	return fmt.Sscanf(line, "f %d %d %d %d", a, b, c, d)
}
