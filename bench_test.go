// Benchmark harness: one benchmark per paper table and figure
// (regenerating the artifact end to end), plus the ablation benches
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/game"
	"repro/internal/gdscript"
	"repro/internal/matrix"
	"repro/internal/modules"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/render"
	"repro/internal/term"
	"repro/internal/voxel"
)

func init() {
	// Benches measure content generation, not escape-code emission.
	term.SetEnabled(false)
}

// benchArtifact runs one figure's full regeneration per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	f, ok := figures.Lookup(id)
	if !ok {
		b.Fatalf("unknown artifact %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arts, _, err := f.Generate()
		if err != nil {
			b.Fatal(err)
		}
		if len(arts) == 0 {
			b.Fatal("no artifacts")
		}
	}
}

// ——— Tables I and II ———

func BenchmarkTableI(b *testing.B)  { benchArtifact(b, "T1") }
func BenchmarkTableII(b *testing.B) { benchArtifact(b, "T2") }

// ——— Figures 1–10 ———

func BenchmarkFigure1_HelloWorld(b *testing.B)   { benchArtifact(b, "F1") }
func BenchmarkFigure2_SceneTree(b *testing.B)    { benchArtifact(b, "F2") }
func BenchmarkFigure3_Inspector(b *testing.B)    { benchArtifact(b, "F3") }
func BenchmarkFigure4_AxisNodes(b *testing.B)    { benchArtifact(b, "F4") }
func BenchmarkFigure5_Training(b *testing.B)     { benchArtifact(b, "F5") }
func BenchmarkFigure6_Topologies(b *testing.B)   { benchArtifact(b, "F6") }
func BenchmarkFigure7_Attack(b *testing.B)       { benchArtifact(b, "F7") }
func BenchmarkFigure8_SDD(b *testing.B)          { benchArtifact(b, "F8") }
func BenchmarkFigure9_DDoS(b *testing.B)         { benchArtifact(b, "F9") }
func BenchmarkFigure10_GraphTheory(b *testing.B) { benchArtifact(b, "F10") }

// ——— Game-loop benches ———

// BenchmarkTrainingPlaythrough plays the training level end to end:
// scene build, controller _ready, fill, question, score.
func BenchmarkTrainingPlaythrough(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := game.New(game.TrainingLesson(), "bench", rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		g.Update(game.ActionFillAll)
		for g.Phase() == game.PhasePlaying {
			g.Update(game.ActionNext)
		}
		if q, ok := g.Question(); ok {
			g.Update([]game.Action{game.ActionAnswer1, game.ActionAnswer2, game.ActionAnswer3}[q.CorrectOption])
		}
		g.Update(game.ActionNext)
		if !g.Done() {
			b.Fatal("lesson not done")
		}
	}
}

// BenchmarkCurriculumPlaythrough plays all 25 built-in modules.
func BenchmarkCurriculumPlaythrough(b *testing.B) {
	lesson, err := modules.Curriculum()
	if err != nil {
		b.Fatal(err)
	}
	answers := []game.Action{game.ActionAnswer1, game.ActionAnswer2, game.ActionAnswer3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := game.New(lesson, "bench", rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		for !g.Done() {
			switch g.Phase() {
			case game.PhasePlaying:
				g.Update(game.ActionFillAll)
				for g.Phase() == game.PhasePlaying {
					g.Update(game.ActionNext)
				}
			case game.PhaseQuestion:
				q, _ := g.Question()
				g.Update(answers[q.CorrectOption])
			case game.PhaseModuleDone:
				g.Update(game.ActionNext)
			}
		}
	}
}

// BenchmarkRender2D and BenchmarkRender3D measure the two in-game
// views on the 10×10 template.
func BenchmarkRender2D(b *testing.B) {
	m := core.MustTemplate(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := game.RenderStatic(m, false, 0, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRender3D(b *testing.B) {
	m := core.MustTemplate(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := game.RenderStatic(m, true, 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

// ——— Ablation: lenient vs strict JSON decoding ———

func BenchmarkAblationDecode(b *testing.B) {
	tpl := core.MustTemplate(10)
	strictJSON, err := core.EncodeModule(tpl)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Lenient", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ParseModule(strictJSON); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StrictBaseline", func(b *testing.B) {
		// encoding/json without the normalization pass: the cost
		// floor.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var m core.Module
			if err := jsonUnmarshal(strictJSON, &m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// jsonUnmarshal isolates encoding/json to keep the import local to
// the bench.
func jsonUnmarshal(data []byte, v any) error {
	dec := newJSONDecoder(bytes.NewReader(data))
	return dec.Decode(v)
}

// ——— Ablation: naive vs greedy voxel meshing ———

func BenchmarkAblationMeshing(b *testing.B) {
	scene, err := render.ComposeWarehouse(mustMatrix(core.MustTemplate(10)), nil, nil, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Naive", func(b *testing.B) {
		b.ReportAllocs()
		quads := 0
		for i := 0; i < b.N; i++ {
			quads = len(voxel.NaiveMesh(scene).Quads)
		}
		b.ReportMetric(float64(quads), "quads")
	})
	b.Run("Greedy", func(b *testing.B) {
		b.ReportAllocs()
		quads := 0
		for i := 0; i < b.N; i++ {
			quads = len(voxel.GreedyMesh(scene).Quads)
		}
		b.ReportMetric(float64(quads), "quads")
	})
}

// ——— Ablation: stylized Iso3D vs voxel-exact splatting ———

func BenchmarkAblationRenderer(b *testing.B) {
	tpl := core.MustTemplate(10)
	m := mustMatrix(tpl)
	colors := mustColors(tpl)
	b.Run("StylizedIso3D", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := render.Iso3D(m, render.Iso3DOptions{Colors: colors, ShowColors: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("VoxelSplat", func(b *testing.B) {
		scene, err := render.ComposeWarehouse(m, colors, nil, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			render.VoxelIso(scene, 0)
		}
	})
}

// ——— Ablation: dense vs sparse aggregation ———

func BenchmarkAblationAggregation(b *testing.B) {
	for _, hosts := range []int{10, 100, 1000} {
		events := hosts * 50
		rng := rand.New(rand.NewSource(7))
		type ev struct{ src, dst, pkts int }
		stream := make([]ev, events)
		for i := range stream {
			stream[i] = ev{rng.Intn(hosts), rng.Intn(hosts), 1 + rng.Intn(3)}
		}
		b.Run(fmt.Sprintf("Dense/hosts=%d", hosts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := matrix.NewSquare(hosts)
				for _, e := range stream {
					m.Add(e.src, e.dst, e.pkts)
				}
				_ = m.Sum()
			}
		})
		b.Run(fmt.Sprintf("COO-CSR/hosts=%d", hosts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := matrix.NewCOO(hosts, hosts)
				for _, e := range stream {
					c.Add(e.src, e.dst, e.pkts)
				}
				_ = c.ToCSR().Sum()
			}
		})
	}
}

// ——— Sparse end-to-end analysis: CSR vs Dense at scale ———

// BenchmarkSparseAnalysis measures Profile + ClassifyBehavior on the
// same scenario-generated traffic matrix through both
// representations at 1k/10k/50k hosts. The Dense path scans all n²
// cells; the CSR path visits stored entries through the
// matrix.Matrix accessor. The 50k Dense leg is omitted: the dense
// matrix alone would be 20 GB, which is exactly the point of the
// sparse path.
func BenchmarkSparseAnalysis(b *testing.B) {
	s, ok := netsim.LookupScenario("flashcrowd")
	if !ok {
		b.Fatal("flashcrowd scenario missing")
	}
	for _, hosts := range []int{1000, 10000, 50000} {
		net := netsim.ScaledNetwork(hosts)
		zones, err := net.Zones()
		if err != nil {
			b.Fatal(err)
		}
		csr, _, err := netsim.GenerateCSR(s, net, 7, 0, netsim.Params{Duration: 8})
		if err != nil {
			b.Fatal(err)
		}
		if hosts <= 10000 {
			b.Run(fmt.Sprintf("Dense/hosts=%d", hosts), func(b *testing.B) {
				d := csr.ToDense()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := matrix.NewProfile(d)
					beh, _ := patterns.ClassifyBehavior(d, zones)
					if p.N < 0 || beh == patterns.BehaviorUnknown {
						b.Fatal("dense analysis failed")
					}
				}
			})
		}
		b.Run(fmt.Sprintf("CSR/hosts=%d", hosts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := matrix.ProfileOf(csr)
				beh, _ := patterns.ClassifyBehaviorOf(csr, zones)
				if p.N < 0 || beh == patterns.BehaviorUnknown {
					b.Fatal("sparse analysis failed")
				}
			}
		})
	}
}

// BenchmarkSemiringMatMul compares the dense semiring product with
// the parallel SpGEMM kernel on a 256-vertex random graph at 2%
// density, over the two semirings whose dense and sparse semantics
// coincide.
func BenchmarkSemiringMatMul(b *testing.B) {
	const n, nnz = 256, 1310 // ≈2% density
	rng := rand.New(rand.NewSource(21))
	coo := matrix.NewCOO(n, n)
	for k := 0; k < nnz; k++ {
		coo.Add(rng.Intn(n), rng.Intn(n), 1+rng.Intn(5))
	}
	csr := coo.ToCSR()
	dense := csr.ToDense()
	for _, s := range []matrix.Semiring{matrix.PlusTimes, matrix.OrAnd} {
		b.Run("Dense/"+s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := matrix.MulSemiring(dense, dense, s); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("CSR/%s/workers=%d", s.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := matrix.MatMulCSR(csr, csr, s, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ——— Ablation: the paper's GDScript vs the native Go port ———

func BenchmarkAblationController(b *testing.B) {
	b.Run("GDScript", func(b *testing.B) {
		root, err := game.BuildLevelScene(game.TrainingModule())
		if err != nil {
			b.Fatal(err)
		}
		controller := root.MustGetNode(game.NodeController)
		controller.SetBehavior(nil)
		beh, err := gdscript.AttachScript(controller, gdscript.PaperControllerScript)
		if err != nil {
			b.Fatal(err)
		}
		engine.NewSceneTree(root).Start()
		if beh.Err != nil {
			b.Fatal(beh.Err)
		}
		beh.Instance.MaxSteps = 1 << 40
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := beh.Instance.Call("change_pallet_color"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Keep print output from growing unbounded across runs.
		beh.Instance.Stdout.Reset()
	})
	b.Run("GoPort", func(b *testing.B) {
		root, err := game.BuildLevelScene(game.TrainingModule())
		if err != nil {
			b.Fatal(err)
		}
		engine.NewSceneTree(root).Start()
		controller := root.MustGetNode(game.NodeController)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := game.ChangePalletColor(controller); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ——— Substrate benches ———

func BenchmarkGDScriptFib(b *testing.B) {
	script, err := gdscript.Parse("func fib(n):\n\tif n < 2:\n\t\treturn n\n\treturn fib(n - 1) + fib(n - 2)\n")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := gdscript.NewInstance(script, nil)
	if err != nil {
		b.Fatal(err)
	}
	inst.MaxSteps = 1 << 40
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("fib", int64(15)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimDDoSScenario(b *testing.B) {
	net := netsim.StandardNetwork()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		trace, _, err := netsim.DDoSScenario(net, rng, 40)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Windows(net, 10, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioThroughput measures the concurrent scenario
// engine's event generation rate (events/s) at 1, 4, and NumCPU
// workers over the sharded-COO aggregation path — the throughput
// curve EXPERIMENTS.md records.
func BenchmarkScenarioThroughput(b *testing.B) {
	net := netsim.ScaledNetwork(64)
	s, ok := netsim.LookupScenario("ddos")
	if !ok {
		b.Fatal("ddos scenario missing")
	}
	p := netsim.Params{Scale: 64}
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				_, stats, err := netsim.GenerateMatrix(s, net, 7, workers, p)
				if err != nil {
					b.Fatal(err)
				}
				events = stats.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkTraceThroughput is the trace-materializing counterpart:
// the full event list, sorted, at serial and parallel worker counts.
func BenchmarkTraceThroughput(b *testing.B) {
	net := netsim.ScaledNetwork(64)
	s, ok := netsim.LookupScenario("background")
	if !ok {
		b.Fatal("background scenario missing")
	}
	p := netsim.Params{Duration: 120, Rate: 400, Scale: 4}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				trace, err := netsim.GenerateTrace(s, net, 7, workers, p)
				if err != nil {
					b.Fatal(err)
				}
				events = len(trace)
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkCOOMerge measures the aggregation hot path: merging
// sharded COO accumulators against compacting one combined slice.
func BenchmarkCOOMerge(b *testing.B) {
	const shards, perShard = 8, 40000
	build := func() []*matrix.COO {
		rng := rand.New(rand.NewSource(13))
		parts := make([]*matrix.COO, shards)
		for s := range parts {
			parts[s] = matrix.NewCOO(256, 256)
			for k := 0; k < perShard; k++ {
				parts[s].Add(rng.Intn(256), rng.Intn(256), 1+rng.Intn(6))
			}
		}
		return parts
	}
	b.Run("merge-sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			parts := build()
			b.StartTimer()
			if _, err := matrix.MergeCOO(parts...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compact-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			all := matrix.NewCOO(256, 256)
			for _, p := range build() {
				for _, e := range p.Entries() {
					all.Add(e.Row, e.Col, e.Val)
				}
			}
			b.StartTimer()
			all.Compact()
		}
	})
	b.Run("compact-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			all := matrix.NewCOO(256, 256)
			for _, p := range build() {
				for _, e := range p.Entries() {
					all.Add(e.Row, e.Col, e.Val)
				}
			}
			b.StartTimer()
			all.CompactParallel(4)
		}
	})
}

// BenchmarkComposedScenario measures the composition algebra's
// overhead on the sparse end-to-end path: a three-layer mixture
// (background overlaying a scan→ddos sequence) generated straight to
// CSR and disentangled by the mixture classifier, at serial and
// parallel worker counts.
func BenchmarkComposedScenario(b *testing.B) {
	net := netsim.ScaledNetwork(64)
	zones, err := net.Zones()
	if err != nil {
		b.Fatal(err)
	}
	s, err := netsim.ParseSpec("overlay(background, sequence(scan, ddos))")
	if err != nil {
		b.Fatal(err)
	}
	p := netsim.Params{Duration: 120, Rate: 200, Scale: 4}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				csr, stats, err := netsim.GenerateCSR(s, net, 7, workers, p)
				if err != nil {
					b.Fatal(err)
				}
				if mixture := patterns.ClassifyMixtureOf(csr, zones); len(mixture) == 0 {
					b.Fatal("mixture classifier found nothing")
				}
				events = stats.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkPermuteCSR measures the parallel host-permutation kernel
// (the Relabel combinator's matrix-level equivalent) on a scaled
// scenario matrix.
func BenchmarkPermuteCSR(b *testing.B) {
	net := netsim.ScaledNetwork(1000)
	s, ok := netsim.LookupScenario("background")
	if !ok {
		b.Fatal("background scenario missing")
	}
	csr, _, err := netsim.GenerateCSR(s, net, 7, 0, netsim.Params{Duration: 60, Rate: 4000})
	if err != nil {
		b.Fatal(err)
	}
	perm := make([]int, csr.Rows())
	for i := range perm {
		perm[i] = (i + 1) % len(perm) // cyclic shift: every row moves
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := matrix.PermuteCSR(csr, perm, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClassifyGraph(b *testing.B) {
	var mats []*matrix.Dense
	for _, e := range patterns.ByFamily(patterns.FamilyGraph) {
		m, _, err := e.Build()
		if err != nil {
			b.Fatal(err)
		}
		mats = append(mats, m)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range mats {
			if patterns.ClassifyGraph(m) == patterns.GraphUnknown {
				b.Fatal("catalog pattern unclassified")
			}
		}
	}
}

func BenchmarkSceneTreeBuild(b *testing.B) {
	m := core.MustTemplate(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root, err := game.BuildLevelScene(m)
		if err != nil {
			b.Fatal(err)
		}
		engine.NewSceneTree(root).Start()
	}
}

func BenchmarkZipRoundTrip(b *testing.B) {
	lesson, err := modules.Curriculum()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := lesson.WriteZip(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := core.ReadZip("bench", buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVoxelCodec(b *testing.B) {
	scene, err := render.ComposeWarehouse(mustMatrix(core.MustTemplate(10)), nil, nil, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := voxel.Encode(&buf, scene); err != nil {
			b.Fatal(err)
		}
		if _, err := voxel.Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ——— helpers ———

func mustMatrix(m *core.Module) *matrix.Dense {
	mat, err := m.Matrix()
	if err != nil {
		panic(err)
	}
	return mat
}

func mustColors(m *core.Module) *matrix.Dense {
	mat, err := m.Colors()
	if err != nil {
		panic(err)
	}
	return mat
}
