package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/course"
)

// TestGenerateWritesValidModule drives the scenario→module path: the
// generated file must parse back as a module that passes validation
// and carries a question.
func TestGenerateWritesValidModule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ddos.json")
	if err := run(context.Background(), []string{"generate", "-scenario", "ddos", "-seed", "7", "-o", path}); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModuleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(); !issues.OK() {
		t.Fatalf("generated module invalid:\n%s", issues.Errs())
	}
	if !m.HasQuestion {
		t.Error("generated module has no question")
	}
	if !strings.Contains(m.Name, "Ddos") {
		t.Errorf("module name %q does not reference the scenario", m.Name)
	}
}

// TestGenerateSpecWritesDisentangleModule drives the spec→module
// path: a composed mixture renders to a valid module whose question
// asks for the layered behaviours.
func TestGenerateSpecWritesDisentangleModule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.json")
	args := []string{"generate", "-spec", "overlay(background, sequence(scan, ddos))", "-seed", "7", "-o", path}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModuleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(); !issues.OK() {
		t.Fatalf("generated module invalid:\n%s", issues.Errs())
	}
	if !strings.Contains(m.Question, "layered") {
		t.Errorf("question %q is not the disentangle question", m.Question)
	}
	if correct := m.Answers[m.CorrectAnswerElement]; correct != "background + ddos + scan" {
		t.Errorf("correct answer = %q, want the component set", correct)
	}
}

// TestGenerateWritesPlayableCampaign drives the scenario→course
// path: course.json plus lesson zips, loadable exactly the way
// trafficwarehouse -course does.
func TestGenerateWritesPlayableCampaign(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	args := []string{"generate", "-scenario", "attack", "-seed", "7", "-window", "10", "-o", dir}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	c, err := course.LoadFile("course.json")
	if err != nil {
		t.Fatal(err)
	}
	loader := course.FileAwareLoader(func(ref string) (*core.Lesson, error) {
		t.Fatalf("unexpected by-name lookup %q", ref)
		return nil, nil
	})
	lessons, err := c.ResolveAll(loader)
	if err != nil {
		t.Fatal(err)
	}
	if len(lessons) != 2 {
		t.Fatalf("campaign resolves %d units, want 2", len(lessons))
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	zips := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".zip") {
			zips++
		}
	}
	if zips != 2 {
		t.Errorf("campaign directory holds %d zips, want 2", zips)
	}
}

// TestGenerateRejectsBadInput pins the error paths.
func TestGenerateRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown scenario", []string{"generate", "-scenario", "nope"}},
		{"missing scenario", []string{"generate"}},
		{"broken spec", []string{"generate", "-spec", "overlay(background"}},
		{"campaign without output", []string{"generate", "-scenario", "ddos", "-window", "5"}},
		{"negative duration", []string{"generate", "-scenario", "ddos", "-duration", "-1"}},
	} {
		if err := run(context.Background(), tc.args); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestGenerateRejectsNegativeWindow: a negative -window must error,
// not silently fall through to the single-module path.
func TestGenerateRejectsNegativeWindow(t *testing.T) {
	err := run(context.Background(), []string{"generate", "-scenario", "ddos", "-window", "-5", "-o", filepath.Join(t.TempDir(), "m.json")})
	if err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("negative window: err = %v, want a window error", err)
	}
}

// TestGenerateNeedsScenarioOrSpec: forgetting both flags gives an
// actionable message, not façade internals about 'pattern'.
func TestGenerateNeedsScenarioOrSpec(t *testing.T) {
	err := run(context.Background(), []string{"generate", "-o", filepath.Join(t.TempDir(), "m.json")})
	if err == nil || !strings.Contains(err.Error(), "-scenario or -spec") {
		t.Errorf("missing flags: err = %v, want the -scenario/-spec hint", err)
	}
}
