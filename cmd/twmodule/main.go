// Command twmodule is the educator tool for Traffic Warehouse
// learning modules:
//
//	twmodule new -size 10 -o lesson.json     write a template to edit
//	twmodule validate file.json...           check modules, show findings
//	twmodule info file.json                  summarize a module
//	twmodule render file.json [-3d] [-rot N] [-colors] [-ppm out.ppm]
//	twmodule gen -id fig9c-ddos-attack -o m.json   generate from the catalog
//	twmodule generate -scenario ddos [-window 10 -o dir]   synthesize from a netsim scenario
//	twmodule generate -spec 'overlay(background, scan)'    synthesize from a composed mixture
//	twmodule list                            list catalog pattern IDs
//	twmodule pack -o lesson.zip file.json... zip modules into a lesson
//	twmodule unpack -d dir lesson.zip        extract a lesson zip
//	twmodule obfuscate file.json...          hide correct answers behind digests
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "twmodule:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: twmodule <new|validate|info|render|gen|generate|list|pack|unpack> ...")
	}
	switch args[0] {
	case "new":
		return cmdNew(args[1:])
	case "generate":
		return cmdGenerate(ctx, args[1:])
	case "validate":
		return cmdValidate(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "render":
		return cmdRender(args[1:])
	case "gen":
		return cmdGen(ctx, args[1:])
	case "list":
		return cmdList()
	case "pack":
		return cmdPack(args[1:])
	case "unpack":
		return cmdUnpack(args[1:])
	case "obfuscate":
		return cmdObfuscate(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// cmdObfuscate rewrites modules so the correct answer is stored as a
// salted digest instead of a plain index (the paper's future-work
// item: students reading the JSON no longer see the answer).
func cmdObfuscate(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("obfuscate: no files given")
	}
	for _, p := range paths {
		m, err := core.LoadModuleFile(p)
		if err != nil {
			return err
		}
		if m.Obfuscated() {
			fmt.Printf("%s: already obfuscated\n", p)
			continue
		}
		if err := m.ObfuscateAnswer(); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		data, err := core.EncodeModule(m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: answer obfuscated (digest %s)\n", p, m.CorrectAnswerDigest)
	}
	return nil
}

// cmdGenerate synthesizes teaching content from the scenario catalog
// through the api façade: by default one aggregate-traffic module
// with an auto-generated question, or — with -window — a whole
// campaign directory (course.json plus lesson zips) that
// trafficwarehouse -course plays end to end.
func cmdGenerate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "netsim scenario name (see twsim -list)")
	spec := fs.String("spec", "", "composed scenario: an expression like 'overlay(background, scan)' or a file holding one (overrides -scenario)")
	seed := fs.Int64("seed", 42, "random seed")
	hosts := fs.Int("hosts", 0, "network size (≤10 = the paper's standard 10-host network)")
	duration := fs.Float64("duration", 0, "scenario length in seconds (0 = scenario default)")
	rate := fs.Float64("rate", 0, "intensity hint in events/sec (0 = default)")
	scale := fs.Int("scale", 0, "volume multiplier (0 = default)")
	window := fs.Float64("window", 0, "aggregation window in seconds; >0 writes a campaign directory instead of one module")
	out := fs.String("o", "", "output module file (stdout when empty), or campaign directory (required with -window)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A negative window would silently select the single-module path
	// below; reject it like every other nonsense parameter (the
	// façade validates the rest).
	if *window < 0 {
		return fmt.Errorf("generate: window must not be negative, got %g", *window)
	}
	if *scenario == "" && *spec == "" {
		return fmt.Errorf("generate: need -scenario or -spec (run twsim -list for the catalog)")
	}
	requested := *scenario
	if *spec != "" {
		canonical, err := api.ResolveSpecArg(*spec, os.ReadFile)
		if err != nil {
			return fmt.Errorf("generate: %w", err)
		}
		requested = canonical
	}
	svc := api.New()
	if *window > 0 {
		if *out == "" {
			return fmt.Errorf("generate: -window needs -o <campaign directory>")
		}
		c, err := svc.Campaign(ctx, api.CampaignRequest{
			Spec: requested, Window: *window, Hosts: *hosts, Seed: *seed,
			Duration: *duration, Rate: *rate, Scale: *scale,
		})
		if err != nil {
			return fmt.Errorf("generate: %w", err)
		}
		if err := c.WriteDir(*out); err != nil {
			return err
		}
		moduleCount := 0
		for _, lesson := range c.Lessons {
			moduleCount += lesson.Len()
		}
		fmt.Printf("wrote campaign %s: %d lessons, %d modules\n", *out, len(c.Lessons), moduleCount)
		fmt.Printf("play it: cd %s && trafficwarehouse -course course.json\n", *out)
		return nil
	}
	m, err := svc.Module(ctx, api.ModuleRequest{
		Spec: requested, Hosts: *hosts, Seed: *seed,
		Duration: *duration, Rate: *rate, Scale: *scale,
	})
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	return writeModule(m, *out)
}

func cmdNew(args []string) error {
	fs := flag.NewFlagSet("new", flag.ContinueOnError)
	size := fs.Int("size", 10, "matrix size (paper templates: 6 or 10)")
	out := fs.String("o", "", "output file (stdout when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := core.Template(*size)
	if err != nil {
		return err
	}
	return writeModule(m, *out)
}

func writeModule(m *core.Module, out string) error {
	data, err := core.EncodeModule(m)
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(data))
	return nil
}

func cmdValidate(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("validate: no files given")
	}
	bad := 0
	for _, p := range paths {
		m, err := core.LoadModuleFile(p)
		if err != nil {
			fmt.Printf("%s: %v\n", p, err)
			bad++
			continue
		}
		issues := m.Validate()
		if len(issues) == 0 {
			fmt.Printf("%s: ok\n", p)
			continue
		}
		fmt.Printf("%s:\n", p)
		for _, issue := range issues {
			fmt.Printf("  %s\n", issue)
		}
		if !issues.OK() {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d file(s) failed validation", bad)
	}
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info: exactly one file")
	}
	m, err := core.LoadModuleFile(args[0])
	if err != nil {
		return err
	}
	mat, err := m.Matrix()
	if err != nil {
		return err
	}
	fmt.Printf("name:    %s\n", m.Name)
	fmt.Printf("author:  %s\n", m.Author)
	fmt.Printf("size:    %s\n", m.Size)
	fmt.Printf("labels:  %s\n", strings.Join(m.AxisLabels, " "))
	fmt.Printf("packets: %d across %d active links (max cell %d)\n", mat.Sum(), mat.NNZ(), mat.Max())
	if m.HasQuestion {
		fmt.Printf("question: %s\n", m.Question)
		for i, a := range m.Answers {
			mark := " "
			if i == m.CorrectAnswerElement {
				mark = "*"
			}
			fmt.Printf("  %s %s\n", mark, a)
		}
	} else {
		fmt.Println("question: (disabled)")
	}
	if issues := m.Validate(); len(issues) > 0 {
		fmt.Printf("findings:\n%s\n", issues)
	}
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	mode3D := fs.Bool("3d", false, "render the 3D view")
	rot := fs.Int("rot", 0, "3D rotation in quarter turns (0-3)")
	colors := fs.Bool("colors", false, "apply the color matrix")
	ppm := fs.String("ppm", "", "also write a voxel-exact PPM screenshot")
	plain := fs.Bool("plain", false, "disable ANSI colors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("render: exactly one file")
	}
	if *plain {
		term.SetEnabled(false)
	}
	m, err := core.LoadModuleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fb, err := game.RenderStatic(m, *mode3D, render.Rotation(*rot), *colors)
	if err != nil {
		return err
	}
	fmt.Print(fb.ANSI())
	if *ppm != "" {
		mat, err := m.Matrix()
		if err != nil {
			return err
		}
		colorMat, err := m.Colors()
		if err != nil {
			return err
		}
		scene, err := render.ComposeWarehouse(mat, colorMat, nil, *colors)
		if err != nil {
			return err
		}
		f, err := os.Create(*ppm)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.VoxelIso(scene, render.Rotation(*rot)).WritePPM(f, 2, 4); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *ppm)
	}
	return nil
}

func cmdGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	id := fs.String("id", "", "catalog pattern ID (see twmodule list)")
	out := fs.String("o", "", "output file (stdout when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := api.New().Module(ctx, api.ModuleRequest{Pattern: *id})
	if err != nil {
		return fmt.Errorf("gen: %w", err)
	}
	return writeModule(m, *out)
}

func cmdList() error {
	family := ""
	for _, e := range api.New().Catalog(context.Background()).Patterns {
		if e.Family != family {
			family = e.Family
			fmt.Printf("%s:\n", family)
		}
		fmt.Printf("  %-28s Fig %-4s %s\n", e.ID, e.Figure, e.Title)
	}
	return nil
}

func cmdPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ContinueOnError)
	out := fs.String("o", "lesson.zip", "output zip path")
	name := fs.String("name", "", "lesson name (defaults to the zip base name)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("pack: no module files given")
	}
	lesson := &core.Lesson{Name: *name}
	if lesson.Name == "" {
		lesson.Name = strings.TrimSuffix(filepath.Base(*out), filepath.Ext(*out))
	}
	for _, p := range fs.Args() {
		m, err := core.LoadModuleFile(p)
		if err != nil {
			return err
		}
		lesson.Modules = append(lesson.Modules, m)
	}
	if issues := lesson.Validate(); !issues.OK() {
		return fmt.Errorf("pack: lesson has errors:\n%s", issues.Errs())
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := lesson.WriteZip(f); err != nil {
		return err
	}
	fmt.Printf("packed %d modules into %s\n", lesson.Len(), *out)
	return nil
}

func cmdUnpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ContinueOnError)
	dir := fs.String("d", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("unpack: exactly one zip file")
	}
	lesson, err := core.LoadZipFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for i, m := range lesson.Modules {
		data, err := core.EncodeModule(m)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, fmt.Sprintf("%02d_module.json", i+1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, m.Name)
	}
	return nil
}
