package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/router"
)

// newPoolServer stands up the route table over a multi-worker core,
// exactly as `twserve -workers n` does.
func newPoolServer(t *testing.T, n int, opts ...api.Option) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newMux(newCore(n, opts...)))
	t.Cleanup(srv.Close)
	return srv
}

// TestNewCorePicksPoolOnlyAboveOneWorker: -workers 1 must serve a
// bare service with no router hop; anything above fronts a pool.
func TestNewCorePicksPoolOnlyAboveOneWorker(t *testing.T) {
	if _, ok := newCore(1).(*api.Service); !ok {
		t.Errorf("newCore(1) = %T, want *api.Service", newCore(1))
	}
	if _, ok := newCore(0).(*api.Service); !ok {
		t.Errorf("newCore(0) = %T, want *api.Service", newCore(0))
	}
	p, ok := newCore(4).(*router.Pool)
	if !ok {
		t.Fatalf("newCore(4) = %T, want *router.Pool", newCore(4))
	}
	if p.Size() != 4 {
		t.Errorf("pool size = %d", p.Size())
	}
}

// TestPooledGenerateCachesAcrossClients: the classroom hot path
// through a 4-worker fleet — one spec routes to one worker, so the
// second identical request is a hit even with four private caches.
func TestPooledGenerateCachesAcrossClients(t *testing.T) {
	srv := newPoolServer(t, 4)
	req := api.GenerateRequest{Spec: "scan", Seed: 1, Workers: 1, Duration: 4, Window: 2}

	cold := postJSON(t, srv.URL+"/v1/generate", req)
	if cold.StatusCode != http.StatusOK || cold.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold: status %d, X-Cache %q", cold.StatusCode, cold.Header.Get("X-Cache"))
	}
	warm := postJSON(t, srv.URL+"/v1/generate", req)
	if warm.StatusCode != http.StatusOK || warm.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm: status %d, X-Cache %q", warm.StatusCode, warm.Header.Get("X-Cache"))
	}
}

// TestPooledStreamEndpoint: the NDJSON route works through the
// router — frames arrive in order and close with a summary.
func TestPooledStreamEndpoint(t *testing.T) {
	srv := newPoolServer(t, 4)
	resp := postJSON(t, srv.URL+"/v1/generate/stream",
		api.GenerateRequest{Spec: "ddos", Seed: 2, Workers: 1, Duration: 6, Window: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var frames []api.StreamFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f api.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want meta + windows + summary", len(frames))
	}
	if frames[0].Type != api.FrameMeta || frames[len(frames)-1].Type != api.FrameSummary {
		t.Errorf("frame envelope = %s ... %s", frames[0].Type, frames[len(frames)-1].Type)
	}
}

// TestStatsEndpointReportsFleet: /v1/stats carries one entry per
// worker with a per-stripe cache breakdown — the observability
// surface the load harness scrapes.
func TestStatsEndpointReportsFleet(t *testing.T) {
	srv := newPoolServer(t, 4)
	// Warm a few specs so the counters are non-trivial.
	for _, spec := range []string{"scan", "ddos", "worm"} {
		resp := postJSON(t, srv.URL+"/v1/generate",
			api.GenerateRequest{Spec: spec, Seed: 1, Workers: 1, Duration: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", spec, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rep := decode[api.StatsReport](t, resp)
	if rep.Version != api.Version || len(rep.Workers) != 4 {
		t.Fatalf("stats = version %q, %d workers", rep.Version, len(rep.Workers))
	}
	cached := 0
	for i, w := range rep.Workers {
		if w.Worker != i {
			t.Errorf("worker %d labeled %d", i, w.Worker)
		}
		if len(w.Cache.Shards) == 0 {
			t.Errorf("worker %d: no per-shard breakdown", i)
		}
		cached += w.Cache.Len
	}
	if cached != 3 {
		t.Errorf("fleet holds %d cached runs, want 3", cached)
	}

	// The single-worker server exposes the same shape with one entry.
	solo := newTestServer(t)
	resp2, err := http.Get(solo.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rep2 := decode[api.StatsReport](t, resp2)
	if len(rep2.Workers) != 1 || rep2.Workers[0].Worker != 0 {
		t.Errorf("single-worker stats = %+v", rep2.Workers)
	}
}

// TestRootRouteListsStats keeps the index honest about the new route.
func TestRootRouteListsStats(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	idx := decode[map[string]string](t, resp)
	if !strings.Contains(idx["routes"], "/v1/stats") {
		t.Errorf("root route listing omits /v1/stats: %q", idx["routes"])
	}
}

// TestPooledSessionsEndpointMergesWorkers: /v1/sessions on a pool
// returns the merged (possibly empty) list, not an error.
func TestPooledSessionsEndpointMergesWorkers(t *testing.T) {
	srv := newPoolServer(t, 4)
	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sessions := decode[[]api.SessionInfo](t, resp)
	if len(sessions) != 0 {
		t.Errorf("idle pool reports %d sessions", len(sessions))
	}
}
