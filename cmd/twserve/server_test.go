package main

import (
	"net/http"
	"testing"
	"time"
)

// TestServerTimeoutPosture pins the listener hardening: slow-header,
// slow-body, and idle connections are all bounded, while WriteTimeout
// stays unset because the streaming route writes for as long as a
// run takes and a write deadline would sever healthy long streams.
func TestServerTimeoutPosture(t *testing.T) {
	srv := newServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 10s", srv.ReadHeaderTimeout)
	}
	if srv.ReadTimeout != 30*time.Second {
		t.Errorf("ReadTimeout = %v, want 30s", srv.ReadTimeout)
	}
	if srv.IdleTimeout != 120*time.Second {
		t.Errorf("IdleTimeout = %v, want 120s", srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v; must stay unset for the streaming route", srv.WriteTimeout)
	}
	if srv.Addr != ":0" {
		t.Errorf("Addr = %q", srv.Addr)
	}
}
