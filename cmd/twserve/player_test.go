package main

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/player"
)

// newPlayerServer stands up the route table over a service whose
// player engine the test controls — the `twserve -store dir` /
// `-player-rps` wiring in miniature.
func newPlayerServer(t *testing.T, eng *player.Engine) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newMux(api.New(api.WithPlayers(eng))))
	t.Cleanup(srv.Close)
	return srv
}

// TestHealthzEndpoint: the liveness probe answers statically in every
// topology — no core round-trip, so CI's boot-wait can poll it before
// the first (possibly expensive) real request.
func TestHealthzEndpoint(t *testing.T) {
	for name, srv := range map[string]*httptest.Server{
		"single": newTestServer(t),
		"pool":   newPoolServer(t, 4),
	} {
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: healthz status = %d", name, resp.StatusCode)
		}
		h := decode[struct {
			Status  string `json:"status"`
			Version string `json:"version"`
		}](t, resp)
		resp.Body.Close()
		if h.Status != "ok" || h.Version != api.Version {
			t.Errorf("%s: healthz = %+v", name, h)
		}
	}
}

// TestPlayerEndpointsFlow drives the whole player surface over HTTP:
// enroll, duplicate enroll, attempt, submit, progress gating, and the
// mastery dashboard, with every error mapped to its status.
func TestPlayerEndpointsFlow(t *testing.T) {
	srv := newTestServer(t)

	// Enroll.
	created := postJSON(t, srv.URL+"/v1/player", api.PlayerCreateRequest{ID: "bob", Name: "Bob"})
	if created.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d", created.StatusCode)
	}
	view := decode[api.PlayerResult](t, created)
	if view.ID != "bob" || view.Version != api.Version {
		t.Fatalf("create view = %+v", view)
	}
	if len(view.Progress.Available) == 0 || view.Progress.Available[0] != "overview" {
		t.Fatalf("fresh enrollment available = %v, want [overview ...]", view.Progress.Available)
	}

	// Duplicate enroll is a conflict; a malformed ID never reaches the
	// store; an unknown player is 404 with the sentinel in the body.
	if resp := postJSON(t, srv.URL+"/v1/player", api.PlayerCreateRequest{ID: "bob"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create status = %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/player", api.PlayerCreateRequest{ID: "Bob!"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id create status = %d, want 400", resp.StatusCode)
	}
	missing, err := http.Get(srv.URL + "/v1/player/ghost")
	if err != nil {
		t.Fatal(err)
	}
	e := decode[struct {
		Error string `json:"error"`
	}](t, missing)
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound || !strings.HasPrefix(e.Error, "player: not found") {
		t.Errorf("unknown player = %d %q", missing.StatusCode, e.Error)
	}

	// Quiz attempt on a figure-pattern module.
	started := postJSON(t, srv.URL+"/v1/player/bob/attempt",
		api.AttemptStartRequest{ModuleRef: player.ModuleRef{Pattern: "fig9c-ddos-attack"}})
	if started.StatusCode != http.StatusOK {
		t.Fatalf("attempt status = %d", started.StatusCode)
	}
	att := decode[api.AttemptResult](t, started)
	if att.Attempt.Attempt != 1 || len(att.Options) < 2 {
		t.Fatalf("attempt = %+v", att)
	}

	submitted := postJSON(t, srv.URL+"/v1/player/bob/attempt/1", api.AttemptSubmitRequest{Answer: 0})
	if submitted.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", submitted.StatusCode)
	}
	sub := decode[api.SubmitResult](t, submitted)
	if sub.Answered != 1 || sub.CorrectText == "" {
		t.Fatalf("submission = %+v", sub)
	}
	// Replaying the same attempt is a conflict; a garbage attempt
	// number never reaches the engine.
	if resp := postJSON(t, srv.URL+"/v1/player/bob/attempt/1", api.AttemptSubmitRequest{Answer: 0}); resp.StatusCode != http.StatusConflict {
		t.Errorf("replayed submit status = %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/player/bob/attempt/banana", api.AttemptSubmitRequest{Answer: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage attempt id status = %d, want 400", resp.StatusCode)
	}

	// Progress gating: timeline is locked until overview completes.
	if resp := postJSON(t, srv.URL+"/v1/player/bob/progress", api.ProgressRequest{Unit: "timeline"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("locked unit status = %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/player/bob/progress", api.ProgressRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unit-less advance status = %d, want 400", resp.StatusCode)
	}
	advanced := postJSON(t, srv.URL+"/v1/player/bob/progress", api.ProgressRequest{Unit: "overview"})
	if advanced.StatusCode != http.StatusOK {
		t.Fatalf("advance status = %d", advanced.StatusCode)
	}
	prog := decode[api.ProgressResult](t, advanced)
	if len(prog.Completed) != 1 || prog.Completed[0] != "overview" {
		t.Fatalf("progress after advance = %+v", prog)
	}

	// Mastery sees bob's graded attempt.
	mresp, err := http.Get(srv.URL + "/v1/player/mastery")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mast := decode[api.MasteryResult](t, mresp)
	if len(mast.Items) == 0 || mast.Items[0].Attempts == 0 {
		t.Fatalf("mastery = %+v", mast.Items)
	}
}

// TestPlayerDirStoreSurvivesRestart is the persistence acceptance
// check over HTTP: progress and history written through one server
// are served identically by a fresh server over the same directory.
func TestPlayerDirStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func() *httptest.Server {
		eng, err := newPlayerEngine("dir", dir, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return newPlayerServer(t, eng)
	}

	first := boot()
	if resp := postJSON(t, first.URL+"/v1/player", api.PlayerCreateRequest{ID: "ada", Name: "Ada"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	postJSON(t, first.URL+"/v1/player/ada/attempt",
		api.AttemptStartRequest{ModuleRef: player.ModuleRef{Pattern: "fig9c-ddos-attack"}}).Body.Close()
	if resp := postJSON(t, first.URL+"/v1/player/ada/attempt/1", api.AttemptSubmitRequest{Answer: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, first.URL+"/v1/player/ada/progress", api.ProgressRequest{Unit: "overview"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("advance status = %d", resp.StatusCode)
	}
	before, err := http.Get(first.URL + "/v1/player/ada")
	if err != nil {
		t.Fatal(err)
	}
	beforeView := decode[api.PlayerResult](t, before)
	before.Body.Close()
	first.Close()

	second := boot()
	after, err := http.Get(second.URL + "/v1/player/ada")
	if err != nil {
		t.Fatal(err)
	}
	afterView := decode[api.PlayerResult](t, after)
	after.Body.Close()
	if afterView.Answered != 1 || afterView.Answered != beforeView.Answered {
		t.Errorf("restart lost history: answered %d, want %d", afterView.Answered, beforeView.Answered)
	}
	if len(afterView.Progress.Completed) != 1 || afterView.Progress.Completed[0] != "overview" {
		t.Errorf("restart lost progress: %+v", afterView.Progress)
	}
	// Attempt numbering continues from the persisted history instead
	// of restarting at 1 (which would collide with the graded attempt).
	started := postJSON(t, second.URL+"/v1/player/ada/attempt",
		api.AttemptStartRequest{ModuleRef: player.ModuleRef{Pattern: "fig9c-ddos-attack"}})
	if att := decode[api.AttemptResult](t, started); att.Attempt.Attempt != 2 {
		t.Errorf("post-restart attempt id = %d, want 2", att.Attempt.Attempt)
	}
}

// TestPlayerRateLimitEndpoint: an exhausted player gets 429 with a
// parseable Retry-After and the exact wait in the body, while other
// players (and the operator's mastery dashboard) stay unthrottled.
func TestPlayerRateLimitEndpoint(t *testing.T) {
	eng := player.NewEngine(player.NewMemStore(),
		player.WithLimiter(player.NewLimiter(0.001, 2, player.DefaultMaxBuckets)))
	srv := newPlayerServer(t, eng)

	// Burst of 2: enroll + one read drain greedy's bucket.
	if resp := postJSON(t, srv.URL+"/v1/player", api.PlayerCreateRequest{ID: "greedy"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/v1/player/greedy"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status = %d", resp.StatusCode)
	}

	limited, err := http.Get(srv.URL + "/v1/player/greedy")
	if err != nil {
		t.Fatal(err)
	}
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", limited.StatusCode)
	}
	retry := limited.Header.Get("Retry-After")
	secs, err := strconv.Atoi(retry)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want whole seconds ≥ 1", retry)
	}
	body := decode[struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}](t, limited)
	limited.Body.Close()
	if !strings.HasPrefix(body.Error, "player: rate limited: retry in") || body.RetryAfterMS <= 0 {
		t.Errorf("429 body = %+v", body)
	}
	// The header is the body's wait rounded up to whole seconds.
	if want := (body.RetryAfterMS + 999) / 1000; int64(secs) != want && want >= 1 {
		t.Errorf("Retry-After = %d, want ceil(%dms) = %d", secs, body.RetryAfterMS, want)
	}

	// Another player is untouched by greedy's exhaustion.
	if resp := postJSON(t, srv.URL+"/v1/player", api.PlayerCreateRequest{ID: "patient"}); resp.StatusCode != http.StatusOK {
		t.Errorf("other player status = %d", resp.StatusCode)
	}
	// Mastery is an operator route; it bypasses the per-player limiter.
	if resp, err := http.Get(srv.URL + "/v1/player/mastery"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusOK {
		t.Errorf("mastery status = %d", resp.StatusCode)
	}
}

// TestNewPlayerEngineFlag pins the -store flag contract.
func TestNewPlayerEngineFlag(t *testing.T) {
	if _, err := newPlayerEngine("mem", "", 0, 0); err != nil {
		t.Errorf("mem store: %v", err)
	}
	if _, err := newPlayerEngine("dir", t.TempDir(), 1, 5); err != nil {
		t.Errorf("dir store: %v", err)
	}
	if _, err := newPlayerEngine("redis", "", 0, 0); err == nil {
		t.Error("unknown store accepted")
	}
}
