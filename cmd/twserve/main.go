// Command twserve is the HTTP front-end of the internal/api façade:
// the served, multi-user face of the teaching pipeline. Every route
// is a thin JSON shim over one Service method — the same methods the
// twsim and twmodule CLIs call in-process — so a classroom of
// clients shares one deterministic result cache and one session
// registry.
//
//	twserve -addr :8080 -workers 4
//
//	GET  /v1/catalog          scenario + figure-pattern catalog
//	POST /v1/generate         api.GenerateRequest  → api.GenerateResult
//	POST /v1/generate/stream  api.GenerateRequest  → NDJSON frame stream
//	POST /v1/analyze          api.AnalyzeRequest   → api.AnalyzeResult
//	POST /v1/module           api.ModuleRequest    → core.Module JSON
//	GET  /v1/sessions         in-flight work (merged across workers)
//	GET  /v1/cache            result-cache counters (fleet aggregate)
//	GET  /v1/stats            per-worker, per-shard counters
//
// With -workers N > 1 the server fronts N in-process api.Service
// workers through router.Pool: every request routes by its canonical
// spec hash, so one spec always lands on one worker and the fleet
// behaves like a single coherent catalog with N caches' worth of
// parallelism. -workers 1 (the default) serves a single service with
// no router in the path.
//
// The streaming variant answers with application/x-ndjson: one meta
// frame, a window frame per sealed aggregation window the moment the
// engine finalizes it (flushed immediately, so the first window
// arrives long before the run completes), then a summary frame —
// api.StreamFrame per line, decodable with api.FrameDecoder. It
// requires a positive window and bypasses the result cache entirely.
//
// Cancellation is end to end: a client hanging up cancels the
// request context, which aborts the sharded generation workers
// mid-run; nothing partial is cached — on the streaming route a
// hangup after window k simply ends the stream there. Batch
// responses carry an X-Cache header ("hit" or "miss") so load tests
// can see the classroom hot path working.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/router"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheCap := flag.Int("cache", api.DefaultCacheCapacity, "result cache capacity per worker (0 disables)")
	workers := flag.Int("workers", 1, "service workers behind the spec-hash router")
	genWorkers := flag.Int("genworkers", 0, "default generation workers per request (0 = all CPUs)")
	flag.Parse()

	svc := newCore(*workers, api.WithCacheCapacity(*cacheCap), api.WithDefaultWorkers(*genWorkers))
	srv := newServer(*addr, newMux(svc))

	// Serve until interrupted, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("twserve: listening on %s (api %s, workers %d, cache %d)", *addr, api.Version, *workers, *cacheCap)
	select {
	case err := <-errc:
		log.Fatalf("twserve: %v", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("twserve: shutdown: %v", err)
		}
	}
}

// maxBodyBytes bounds request bodies; an analyze matrix at the
// paper's sizes is a few KB, so 8 MiB leaves room for large posted
// matrices without inviting abuse.
const maxBodyBytes = 8 << 20

// newServer builds the hardened http.Server. Split from main so the
// test suite can assert the timeout posture.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:    addr,
		Handler: h,
		// A client trickling its headers or body must not pin a
		// connection forever; idle keep-alives recycle after two
		// minutes. ReadTimeout comfortably covers an 8 MiB body on a
		// slow classroom link.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
		// WriteTimeout is deliberately absent: it clocks from the end
		// of the request headers, and the streaming route legitimately
		// writes frames for as long as a big run takes — a fixed write
		// deadline would sever healthy long streams. Slow or hung
		// batch readers are bounded by the request context instead
		// (client hangup cancels end to end).
	}
}

// newCore builds the service core the mux serves: a bare service for
// workers ≤ 1 (no router hop on the single-worker path), a
// router.Pool above that.
func newCore(workers int, opts ...api.Option) api.Core {
	if workers <= 1 {
		return api.New(opts...)
	}
	return router.NewPool(workers, opts...)
}

// newMux builds the route table over a service core — a single
// *api.Service or a *router.Pool fleet; every handler is written
// against the api.Core surface. Split from main so the test suite can
// drive the full HTTP surface through httptest.
func newMux(svc api.Core) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			httpError(w, http.StatusNotFound, fmt.Errorf("no such route %s (api version %s)", r.URL.Path, api.Version))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"service": "twserve",
			"version": api.Version,
			"routes":  "GET /v1/catalog · POST /v1/generate · POST /v1/generate/stream · POST /v1/analyze · POST /v1/module · GET /v1/sessions · GET /v1/cache · GET /v1/stats",
		})
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Catalog(r.Context()))
	})
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		var req api.GenerateRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.Generate(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		w.Header().Set("X-Cache", cacheHeader(res.CacheHit))
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/generate/stream", func(w http.ResponseWriter, r *http.Request) {
		var req api.GenerateRequest
		if !readJSON(w, r, &req) {
			return
		}
		flusher, _ := w.(http.Flusher)
		wroteAny := false
		err := svc.GenerateStream(r.Context(), req, func(f api.StreamFrame) error {
			if !wroteAny {
				// Headers commit on the first frame, after validation has
				// already passed inside GenerateStream.
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				wroteAny = true
			}
			if err := api.EncodeFrame(w, f); err != nil {
				return err
			}
			if flusher != nil {
				// Flush per frame: the whole point of the route is that a
				// window leaves the process the moment it seals, not when
				// the response buffer happens to fill.
				flusher.Flush()
			}
			return nil
		})
		if err == nil {
			return
		}
		if !wroteAny {
			// Nothing committed yet: answer like the batch route (400 for
			// invalid requests, and so on).
			serviceError(w, r, err)
			return
		}
		// Mid-stream failure: the status line is gone, so the error
		// travels in-band as a final frame. A hung-up client won't see
		// it, which is fine — it ended the stream on purpose.
		if encErr := api.EncodeFrame(w, api.StreamFrame{Type: api.FrameError, Error: err.Error()}); encErr == nil && flusher != nil {
			flusher.Flush()
		}
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req api.AnalyzeRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.Analyze(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		w.Header().Set("X-Cache", cacheHeader(res.CacheHit))
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/module", func(w http.ResponseWriter, r *http.Request) {
		var req api.ModuleRequest
		if !readJSON(w, r, &req) {
			return
		}
		m, err := svc.Module(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, m)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Sessions())
	})
	mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.CacheStats())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	return mux
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// readJSON decodes a bounded request body, answering 413 when the
// body busts the size cap and 400 on garbage. It reports whether
// the handler should proceed.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return false
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty request body; send a JSON request object"))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// serviceError maps façade errors onto status codes: invalid
// requests are the caller's fault (400), a cancelled request context
// means the client hung up (499, best-effort — the connection is
// usually gone), everything else is a 500.
func serviceError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, api.ErrInvalidRequest):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, api.ErrSessionCancelled):
		// The run was killed server-side (CancelSession) while this
		// client was still connected.
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, context.Canceled), errors.Is(r.Context().Err(), context.Canceled):
		// 499 is nginx's "client closed request"; there is no
		// standard constant.
		httpError(w, 499, err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error   string `json:"error"`
	Version string `json:"version"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error(), Version: api.Version})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// api.WriteJSON encodes through a pooled buffer and reaches the
	// socket in one Write — a large generate result no longer
	// allocates a fresh multi-megabyte encode buffer per response.
	if err := api.WriteJSON(w, v); err != nil {
		// Headers are gone; nothing to do but log.
		log.Printf("twserve: encode response: %v", err)
	}
}
