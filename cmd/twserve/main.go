// Command twserve is the HTTP front-end of the internal/api façade:
// the served, multi-user face of the teaching pipeline. Every route
// is a thin JSON shim over one Service method — the same methods the
// twsim and twmodule CLIs call in-process — so a classroom of
// clients shares one deterministic result cache and one session
// registry. The route table itself lives in internal/serve; this
// binary only picks which core to put behind it:
//
//	twserve -addr :8080 -workers 4
//	twserve -addr :8080 -proxy http://10.0.0.7:8080,http://10.0.0.8:8080
//
// With -workers N > 1 the server fronts N in-process api.Service
// workers through router.Pool: every request routes by its canonical
// spec hash, so one spec always lands on one worker and the fleet
// behaves like a single coherent catalog with N caches' worth of
// parallelism. -workers 1 (the default) serves a single service with
// no router in the path.
//
// With -proxy the server computes nothing itself: it fronts N other
// twserve *processes* through cluster.Cluster, routing by the same
// consistent spec-hash ring — so respelled specs and
// Generate↔Analyze pairs keep hitting the same backend's warm cache,
// bit-identical to a single process. Proxy mode additionally mounts
// the live membership routes (GET /v1/cluster, POST
// /v1/cluster/{add,remove}) for growing and shrinking the backend
// ring under load with connection draining, and its GET /v1/stats
// aggregates every backend's worker × stripe counters plus cluster
// totals. A proxy whose every backend has been removed answers 503
// until one is added back.
//
// See the internal/serve package documentation for the route table
// and the streaming/cancellation semantics (they are identical in
// all three modes — a client hanging up mid-stream cancels the run
// end to end, through the proxy hop if there is one).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/player"
	"repro/internal/router"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheCap := flag.Int("cache", api.DefaultCacheCapacity, "result cache capacity per worker (0 disables)")
	workers := flag.Int("workers", 1, "service workers behind the spec-hash router")
	genWorkers := flag.Int("genworkers", 0, "default generation workers per request (0 = all CPUs)")
	proxy := flag.String("proxy", "", "comma-separated backend base URLs; serve as a cluster reverse proxy instead of computing locally")
	store := flag.String("store", "mem", "player store backend: mem (in-memory) or dir (file-backed)")
	storeDir := flag.String("store-dir", "players", "player store directory (with -store dir)")
	playerRPS := flag.Float64("player-rps", 0, "per-player request rate limit (0 disables)")
	playerBurst := flag.Float64("player-burst", 10, "per-player rate limit burst (with -player-rps)")
	flag.Parse()

	var handler http.Handler
	var mode string
	if *proxy != "" {
		// Proxy mode computes nothing locally — player state lives on
		// the backends, partitioned by the same ring as everything
		// else, so the store flags are intentionally unused here.
		cl, err := cluster.New(splitBackends(*proxy))
		if err != nil {
			log.Fatalf("twserve: %v", err)
		}
		handler = serve.NewProxyMux(cl, cl)
		mode = "proxy → " + strings.Join(cl.Backends(), ", ")
	} else {
		players, err := newPlayerEngine(*store, *storeDir, *playerRPS, *playerBurst)
		if err != nil {
			log.Fatalf("twserve: %v", err)
		}
		handler = newMux(newCore(*workers,
			api.WithCacheCapacity(*cacheCap),
			api.WithDefaultWorkers(*genWorkers),
			api.WithPlayers(players)))
		mode = "workers " + strconv.Itoa(*workers) + ", store " + *store
	}
	srv := newServer(*addr, handler)

	// Serve until interrupted, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("twserve: listening on %s (api %s, %s, cache %d)", *addr, api.Version, mode, *cacheCap)
	select {
	case err := <-errc:
		log.Fatalf("twserve: %v", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("twserve: shutdown: %v", err)
		}
	}
}

// splitBackends parses the -proxy flag's comma-separated URL list.
func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}

// newServer builds the hardened http.Server (see serve.NewServer for
// the timeout posture). Kept as a local name so the test suite can
// assert it.
func newServer(addr string, h http.Handler) *http.Server {
	return serve.NewServer(addr, h)
}

// newPlayerEngine builds the shared player engine from the store and
// rate-limit flags: one engine per process, handed to every worker
// (the pool's in-process workers must see one store and one attempt
// registry — player state is mutable per-user data, not cacheable
// compute).
func newPlayerEngine(store, dir string, rps, burst float64) (*player.Engine, error) {
	var backing player.Store
	switch store {
	case "mem":
		backing = player.NewMemStore()
	case "dir":
		ds, err := player.NewDirStore(dir)
		if err != nil {
			return nil, err
		}
		backing = ds
	default:
		return nil, fmt.Errorf("unknown -store %q (want mem or dir)", store)
	}
	return player.NewEngine(backing,
		player.WithLimiter(player.NewLimiter(rps, burst, player.DefaultMaxBuckets))), nil
}

// newCore builds the service core the mux serves: a bare service for
// workers ≤ 1 (no router hop on the single-worker path), a
// router.Pool above that.
func newCore(workers int, opts ...api.Option) api.Core {
	if workers <= 1 {
		return api.New(opts...)
	}
	return router.NewPool(workers, opts...)
}

// newMux builds the route table over a service core — see
// internal/serve for the handlers. Kept as a local name so the test
// suite drives the exact handler main wires.
func newMux(svc api.Core) http.Handler {
	return serve.NewMux(svc)
}
