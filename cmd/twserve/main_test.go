package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
)

// newTestServer stands up the full route table over a fresh service.
func newTestServer(t *testing.T, opts ...api.Option) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newMux(api.New(opts...)))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestCatalogEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	cat := decode[api.CatalogResult](t, resp)
	if cat.Version != api.Version || len(cat.Scenarios) < 8 || len(cat.Patterns) == 0 {
		t.Errorf("catalog = version %q, %d scenarios, %d patterns",
			cat.Version, len(cat.Scenarios), len(cat.Patterns))
	}
}

// TestGenerateEndpointCachesAcrossClients is the served classroom
// hot path: the second identical request is a cache hit, visible in
// both the X-Cache header and the response body.
func TestGenerateEndpointCachesAcrossClients(t *testing.T) {
	srv := newTestServer(t)
	req := api.GenerateRequest{Spec: "scan", Seed: 1, Workers: 1, Duration: 4, Window: 2}

	cold := postJSON(t, srv.URL+"/v1/generate", req)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d", cold.StatusCode)
	}
	if h := cold.Header.Get("X-Cache"); h != "miss" {
		t.Errorf("cold X-Cache = %q", h)
	}
	coldRes := decode[api.GenerateResult](t, cold)
	if coldRes.CacheHit || coldRes.Events == 0 || len(coldRes.Windows) != 2 {
		t.Errorf("cold result = hit=%v events=%d windows=%d", coldRes.CacheHit, coldRes.Events, len(coldRes.Windows))
	}

	warm := postJSON(t, srv.URL+"/v1/generate", req)
	if h := warm.Header.Get("X-Cache"); h != "hit" {
		t.Errorf("warm X-Cache = %q", h)
	}
	warmRes := decode[api.GenerateResult](t, warm)
	if !warmRes.CacheHit {
		t.Error("warm response body does not mark the cache hit")
	}
	if warmRes.Events != coldRes.Events || warmRes.Packets != coldRes.Packets {
		t.Error("warm result differs from cold result")
	}
}

func TestGenerateEndpointBadRequests(t *testing.T) {
	srv := newTestServer(t)
	for name, body := range map[string]string{
		"garbage json":     "{nope",
		"empty body":       "",
		"unknown scenario": `{"spec":"nope"}`,
		"negative rate":    `{"spec":"scan","rate":-1}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/generate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		e := decode[struct {
			Error string `json:"error"`
		}](t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message in body", name)
		}
	}
}

// TestGenerateEndpointCancellation: a client hanging up mid-request
// aborts the run server-side and leaves the cache unpoisoned.
func TestGenerateEndpointCancellation(t *testing.T) {
	srv := newTestServer(t)
	// Heavy enough to outlive the 20ms hangup below.
	body := `{"spec":"amplify(background, 200)","hosts":400,"duration":60,"workers":2}`

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/generate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request survived its cancelled context")
	}

	// The aborted run must not have been cached: a fresh stats probe
	// shows no entries.
	resp, err := http.Get(srv.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decode[api.CacheStats](t, resp)
	if stats.Len != 0 {
		t.Errorf("cancelled request left %d cache entries", stats.Len)
	}
}

func TestAnalyzeEndpointMatrixPath(t *testing.T) {
	srv := newTestServer(t)
	rows := make([][]int, 10)
	for i := range rows {
		rows[i] = make([]int, 10)
		if i != 3 {
			rows[i][3] = 9
		}
	}
	resp := postJSON(t, srv.URL+"/v1/analyze", api.AnalyzeRequest{Matrix: rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res := decode[api.AnalyzeResult](t, resp)
	if res.Source != "matrix" || res.Aggregate.Profile.NNZ != 9 || len(res.Supernodes) == 0 {
		t.Errorf("analyze result = %+v", res)
	}
}

func TestModuleEndpointReturnsValidModule(t *testing.T) {
	srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/module", api.ModuleRequest{Spec: "ddos", Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	m := decode[core.Module](t, resp)
	if issues := m.Validate(); !issues.OK() {
		t.Fatalf("served module invalid:\n%s", issues.Errs())
	}
	if !m.HasQuestion {
		t.Error("served module has no question")
	}
}

func TestSessionsAndRootEndpoints(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("sessions status = %d", resp.StatusCode)
	}
	if sessions := decode[[]api.SessionInfo](t, resp); len(sessions) != 0 {
		t.Errorf("idle server reports %d sessions", len(sessions))
	}

	root, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Body.Close()
	if root.StatusCode != http.StatusOK {
		t.Errorf("root status = %d", root.StatusCode)
	}
	missing, err := http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status = %d, want 404", missing.StatusCode)
	}
}

// TestGenerateEndpointIncludeMatrices: the wire form can carry the
// dense grids when asked.
func TestGenerateEndpointIncludeMatrices(t *testing.T) {
	srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/generate", api.GenerateRequest{
		Spec: "ddos", Seed: 2, Workers: 1, Duration: 4, Window: 2, IncludeMatrices: true,
	})
	res := decode[api.GenerateResult](t, resp)
	if len(res.Cells) != res.Hosts {
		t.Errorf("aggregate cells rows = %d, want %d", len(res.Cells), res.Hosts)
	}
	for _, w := range res.Windows {
		if len(w.Cells) != res.Hosts {
			t.Fatalf("window %d cells rows = %d, want %d", w.Index, len(w.Cells), res.Hosts)
		}
	}
	sum := 0
	for _, row := range res.Cells {
		if len(row) != res.Hosts {
			t.Fatalf("ragged aggregate cells")
		}
		for _, v := range row {
			sum += v
		}
	}
	if sum != res.Packets-windowDropped(res) {
		// Dropped packets never land in the matrix; everything else
		// must.
		t.Errorf("aggregate cells sum %d, packets %d (dropped %d)", sum, res.Packets, windowDropped(res))
	}
}

// windowDropped totals the dropped packets the windows report.
func windowDropped(res api.GenerateResult) int {
	total := 0
	for _, w := range res.Windows {
		total += w.Dropped
	}
	return total
}

// TestVersionPrefixIsStable pins the wire contract: every route
// lives under the version the api package declares.
func TestVersionPrefixIsStable(t *testing.T) {
	if api.Version != "v1" {
		t.Fatalf("api.Version = %q; bumping it breaks every client — do it deliberately and update this test", api.Version)
	}
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + fmt.Sprintf("/%s/catalog", api.Version))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("versioned catalog route status = %d", resp.StatusCode)
	}
}

// TestOversizedBodyIs413: the body cap answers with the status code
// clients branch on, not a generic 400.
func TestOversizedBodyIs413(t *testing.T) {
	srv := newTestServer(t)
	big := strings.Repeat("x", 9<<20)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

// TestGenerateStreamEndpoint drives the NDJSON route end to end:
// right content type, a meta frame first, windows in order, a
// summary last, every line a valid frame.
func TestGenerateStreamEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/generate/stream", api.GenerateRequest{
		Spec: "ddos", Seed: 1, Duration: 20, Rate: 6, Window: 2.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q, want application/x-ndjson", ct)
	}
	dec := api.NewFrameDecoder(resp.Body)
	var types []string
	nextWindow := 0
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", len(types), err)
		}
		types = append(types, f.Type)
		if f.Type == api.FrameWindow {
			if f.Window.Index != nextWindow {
				t.Fatalf("window %d arrived out of order (expected %d)", f.Window.Index, nextWindow)
			}
			nextWindow++
		}
	}
	if len(types) != 10 || types[0] != api.FrameMeta || types[len(types)-1] != api.FrameSummary {
		t.Fatalf("frame sequence = %v, want meta, 8 windows, summary", types)
	}
}

// TestGenerateStreamEndpointBadRequest: validation failures happen
// before any frame is written, so they arrive as a plain HTTP error
// exactly like the batch route.
func TestGenerateStreamEndpointBadRequest(t *testing.T) {
	srv := newTestServer(t)
	for name, body := range map[string]string{
		"no window":        `{"spec":"ddos"}`,
		"unknown scenario": `{"spec":"nope","window":5}`,
		"garbage json":     "{nope",
	} {
		resp, err := http.Post(srv.URL+"/v1/generate/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		e := decode[struct {
			Error string `json:"error"`
		}](t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", name)
		}
	}
}

// TestGenerateStreamEndpointHangup is the end-to-end cancellation
// contract: a client that disconnects after the first window stops
// the run server-side, the session registry drains, and a later
// batch request recomputes from cold — nothing partial was cached.
func TestGenerateStreamEndpointHangup(t *testing.T) {
	srv := newTestServer(t)
	body := `{"spec":"background","seed":3,"duration":3600,"rate":2,"window":5,"workers":2}`

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/generate/stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dec := api.NewFrameDecoder(resp.Body)
	sawWindow := false
	for !sawWindow {
		f, err := dec.Next()
		if err != nil {
			t.Fatalf("stream ended before first window: %v", err)
		}
		sawWindow = f.Type == api.FrameWindow
	}
	// Hang up mid-stream.
	cancel()
	resp.Body.Close()

	// The server-side session must drain promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sresp, err := http.Get(srv.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		sessions := decode[[]api.SessionInfo](t, sresp)
		sresp.Body.Close()
		if len(sessions) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream session still alive after hangup: %+v", sessions)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And the cache must be untouched: the hangup inserted nothing.
	cresp, err := http.Get(srv.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if stats := decode[api.CacheStats](t, cresp); stats.Len != 0 {
		t.Errorf("hung-up stream left %d cache entries", stats.Len)
	}
}

// TestGenerateStreamEndpointBypassesCache pins the HTTP-level cache
// contract: streams neither hit nor populate the shared cache.
func TestGenerateStreamEndpointBypassesCache(t *testing.T) {
	srv := newTestServer(t)
	req := api.GenerateRequest{Spec: "scan", Seed: 1, Workers: 1, Duration: 4, Window: 2}

	// Prime the cache with a batch request.
	postJSON(t, srv.URL+"/v1/generate", req).Body.Close()

	// Stream the same request to completion.
	resp := postJSON(t, srv.URL+"/v1/generate/stream", req)
	dec := api.NewFrameDecoder(resp.Body)
	frames := 0
	for {
		if _, err := dec.Next(); err != nil {
			break
		}
		frames++
	}
	if frames != 4 {
		t.Fatalf("stream produced %d frames, want meta+2 windows+summary", frames)
	}

	cresp, err := http.Get(srv.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	stats := decode[api.CacheStats](t, cresp)
	if stats.Len != 1 || stats.Hits != 0 {
		t.Errorf("stream touched the cache: %+v", stats)
	}
}
