// Command trafficwarehouse runs the Traffic Warehouse game: built-in
// lessons (training, topologies, attack, security-defense-deterrence,
// ddos, graph-theory), lesson zip files, or directories of module
// JSON files, played interactively on stdin or scripted for
// demonstrations.
//
// Controls: W/A/S/D move, P place box, X remove box, SPACE 2D/3D,
// Q/E rotate, C colors, 1-3 answer, N next, F fill, Z quit.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/game"
	"repro/internal/modules"
	"repro/internal/term"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trafficwarehouse:", err)
		os.Exit(1)
	}
}

func run() error {
	lessonName := flag.String("lesson", "training", "built-in lesson: "+strings.Join(modules.LessonNames, ", ")+", or curriculum")
	zipPath := flag.String("zip", "", "load a lesson zip file instead of a built-in lesson")
	dirPath := flag.String("dir", "", "load a directory of module JSON files")
	coursePath := flag.String("course", "", "play a hierarchical course manifest (JSON)")
	student := flag.String("student", "student", "student name for the score report")
	seed := flag.Int64("seed", 1, "random seed for answer shuffling")
	script := flag.String("script", "", "space-separated action script (runs non-interactively)")
	plain := flag.Bool("plain", false, "disable ANSI colors")
	savePath := flag.String("save", "", "write the session score record (JSON) to this file")
	flag.Parse()

	if *plain {
		term.SetEnabled(false)
	}

	if *coursePath != "" {
		return runCourse(*coursePath, *student, *seed, *script, *plain)
	}

	lesson, err := loadLesson(*lessonName, *zipPath, *dirPath)
	if err != nil {
		return err
	}
	if issues := lesson.Validate(); len(issues) > 0 {
		fmt.Fprintln(os.Stderr, issues.String())
		if !issues.OK() {
			return fmt.Errorf("lesson %q has validation errors", lesson.Name)
		}
	}

	g, err := game.New(lesson, *student, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	var src game.Source
	if *script != "" {
		src, err = game.NewScriptSource(*script)
		if err != nil {
			return err
		}
	} else {
		fmt.Print(game.Banner())
		fmt.Println("type actions then Enter (w/a/s/d move, p place, space 3D, q/e rotate, c colors, 1-3 answer, n next, f fill, z quit)")
		src = game.NewReaderSource(os.Stdin)
	}

	g.Play(src, func(frame string) {
		if *plain {
			fmt.Println(g.View())
		} else {
			fmt.Println(g.Screen())
		}
	})
	if !g.Done() {
		fmt.Println("\n(input ended before the lesson finished)")
	}
	fmt.Println(g.Session().Report())
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.Session().Save(f, time.Now()); err != nil {
			return err
		}
		fmt.Printf("session saved to %s\n", *savePath)
	}
	return nil
}

// runCourse plays a hierarchical course manifest: units in
// prerequisite order, each unit's lessons in sequence, one score
// report per unit.
func runCourse(path, student string, seed int64, script string, plain bool) error {
	c, err := course.LoadFile(path)
	if err != nil {
		return err
	}
	fmt.Print(c.Outline())
	loader := course.FileAwareLoader(func(ref string) (*core.Lesson, error) {
		if ref == "curriculum" {
			return modules.Curriculum()
		}
		return modules.Lesson(ref)
	})
	lessonsByUnit, err := c.ResolveAll(loader)
	if err != nil {
		return err
	}
	order, err := c.Order()
	if err != nil {
		return err
	}
	progress := course.NewProgress(c)
	var src game.Source
	if script != "" {
		src, err = game.NewScriptSource(script)
		if err != nil {
			return err
		}
	} else {
		src = game.NewReaderSource(os.Stdin)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, unit := range order {
		fmt.Printf("\n═══ unit: %s ═══\n", unit.Name)
		if unit.Description != "" {
			fmt.Println(unit.Description)
		}
		for _, lesson := range lessonsByUnit[unit.Name] {
			g, err := game.New(lesson, student, rng)
			if err != nil {
				return err
			}
			g.Play(src, func(string) {
				if plain {
					fmt.Println(g.View())
				} else {
					fmt.Println(g.Screen())
				}
			})
			fmt.Println(g.Session().Report())
			if g.Quit() {
				fmt.Println("course interrupted")
				fmt.Print(progress.Summary())
				return nil
			}
			if !g.Done() {
				fmt.Println("(input ended before the course finished)")
				fmt.Print(progress.Summary())
				return nil
			}
		}
		if err := progress.Complete(unit.Name); err != nil {
			return err
		}
		fmt.Printf("unit %s complete\n", unit.Name)
	}
	fmt.Println("\ncourse complete!")
	fmt.Print(progress.Summary())
	return nil
}

// loadLesson resolves the lesson from the mutually exclusive source
// flags.
func loadLesson(name, zipPath, dirPath string) (*core.Lesson, error) {
	set := 0
	for _, s := range []string{zipPath, dirPath} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("use only one of -zip and -dir")
	}
	switch {
	case zipPath != "":
		return core.LoadZipFile(zipPath)
	case dirPath != "":
		return core.LoadDir(dirPath)
	case name == "curriculum":
		return modules.Curriculum()
	default:
		return modules.Lesson(name)
	}
}
