package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/loadreport"
)

// loadFile is the combined load snapshot the CI smoke job assembles:
// one twload summary against `twserve -workers 1` and one against the
// sharded fleet. (BENCH_PR8.json in the repo root is this shape.)
type loadFile struct {
	Single  loadreport.Summary `json:"single"`
	Sharded loadreport.Summary `json:"sharded"`
}

// runLoadGate checks the machine-independent invariants of a combined
// load snapshot and returns the process exit code. Latency and
// throughput numbers themselves vary wildly across runners, so the
// gate pins only the *shape* a healthy sharded core produces:
//
//   - both runs delivered load and saw zero errors;
//   - warm p50 sits at least warmFactor below cold p50 in both runs
//     (the cache and the router's spec affinity are working — a
//     misrouted respelling or a poisoned cache collapses this gap);
//   - the sharded fleet's throughput is at least minSpeedup × the
//     single worker's (CI uses 1.0 — "sharding must not cost
//     throughput" — because the runner's core count is unknown;
//     multi-core measurements land in EXPERIMENTS.md).
func runLoadGate(path string, warmFactor, minSpeedup float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read load snapshot: %v\n", err)
		return 2
	}
	var lf loadFile
	if err := json.Unmarshal(data, &lf); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse load snapshot: %v\n", err)
		return 2
	}

	failed := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Printf("ok   "+format+"\n", args...)
		} else {
			fmt.Printf("FAIL "+format+"\n", args...)
			failed++
		}
	}

	for _, run := range []struct {
		name string
		s    loadreport.Summary
	}{{"single", lf.Single}, {"sharded", lf.Sharded}} {
		check(run.s.Requests > 0, "%s: delivered load (%d requests, %.1f req/s, %d workers)",
			run.name, run.s.Requests, run.s.Throughput, run.s.Workers)
		check(run.s.Errors == 0, "%s: zero errors (got %d)", run.name, run.s.Errors)
		warm, okW := run.s.Class("warm")
		cold, okC := run.s.Class("cold")
		check(okW && okC, "%s: warm and cold classes both sampled", run.name)
		if okW && okC && cold.P50Ms > 0 {
			check(warm.P50Ms*warmFactor < cold.P50Ms,
				"%s: warm p50 %.2fms < cold p50 %.2fms / %g (cache + spec affinity)",
				run.name, warm.P50Ms, cold.P50Ms, warmFactor)
		}
	}
	if lf.Single.Throughput > 0 {
		check(lf.Sharded.Throughput >= minSpeedup*lf.Single.Throughput,
			"sharded throughput %.1f req/s ≥ %g × single %.1f req/s",
			lf.Sharded.Throughput, minSpeedup, lf.Single.Throughput)
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d load invariant(s) failed\n", failed)
		return 1
	}
	fmt.Println("benchguard: load snapshot satisfies all invariants")
	return 0
}
