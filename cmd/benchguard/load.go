package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/loadreport"
)

// loadFile is the combined load snapshot a CI smoke job assembles.
// Two shapes exist, distinguished by which fields are present:
//
//   - PR 8 (sharded core):   {"single": …, "sharded": …}
//   - PR 9 (cluster proxy):  {"direct": …, "proxy": …, "membership": …}
//
// where direct is twload against one backend twserve, proxy is the
// same load through `twserve -proxy` fronting the backends, and
// membership is a proxy run during which a backend was added and
// removed mid-load.
type loadFile struct {
	Single  *loadreport.Summary `json:"single,omitempty"`
	Sharded *loadreport.Summary `json:"sharded,omitempty"`

	Direct     *loadreport.Summary `json:"direct,omitempty"`
	Proxy      *loadreport.Summary `json:"proxy,omitempty"`
	Membership *loadreport.Summary `json:"membership,omitempty"`
}

// runLoadGate checks the machine-independent invariants of a combined
// load snapshot and returns the process exit code. Latency and
// throughput numbers themselves vary wildly across runners, so the
// gate pins only the *shape* a healthy service produces:
//
//   - every run present delivered load and saw zero errors — for the
//     membership run that means zero dropped requests across a live
//     backend add + remove;
//   - warm p50 sits at least warmFactor below cold p50 in every
//     steady-state run (the cache and spec affinity are working — a
//     misrouted respelling or a poisoned cache collapses this gap;
//     the churning membership run is exempt from latency shape);
//   - sharded throughput ≥ minSpeedup × single (PR 8 pair);
//   - proxy cold p50 ≤ maxOverhead × direct cold p50 (the HTTP hop
//     may tax the compute-bound floor only so much);
//   - the proxy run's warm-class cache hit rate ≥ minHitRate (ring
//     affinity holds across processes: warm repeats keep landing on
//     the backend already holding the run).
func runLoadGate(path string, warmFactor, minSpeedup, maxOverhead, minHitRate float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read load snapshot: %v\n", err)
		return 2
	}
	var lf loadFile
	if err := json.Unmarshal(data, &lf); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse load snapshot: %v\n", err)
		return 2
	}

	failed := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Printf("ok   "+format+"\n", args...)
		} else {
			fmt.Printf("FAIL "+format+"\n", args...)
			failed++
		}
	}

	runs := []struct {
		name string
		s    *loadreport.Summary
		// steady runs must show the warm ≪ cold latency shape; the
		// membership-churn run only has to stay error-free.
		steady bool
	}{
		{"single", lf.Single, true},
		{"sharded", lf.Sharded, true},
		{"direct", lf.Direct, true},
		{"proxy", lf.Proxy, true},
		{"membership", lf.Membership, false},
	}
	present := 0
	for _, run := range runs {
		if run.s == nil {
			continue
		}
		present++
		check(run.s.Requests > 0, "%s: delivered load (%d requests, %.1f req/s, %d workers)",
			run.name, run.s.Requests, run.s.Throughput, run.s.Workers)
		check(run.s.Errors == 0, "%s: zero errors (got %d)", run.name, run.s.Errors)
		if !run.steady {
			continue
		}
		warm, okW := run.s.Class("warm")
		cold, okC := run.s.Class("cold")
		check(okW && okC, "%s: warm and cold classes both sampled", run.name)
		if okW && okC && cold.P50Ms > 0 {
			check(warm.P50Ms*warmFactor < cold.P50Ms,
				"%s: warm p50 %.2fms < cold p50 %.2fms / %g (cache + spec affinity)",
				run.name, warm.P50Ms, cold.P50Ms, warmFactor)
		}
	}
	if present == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s holds no load runs benchguard knows\n", path)
		return 2
	}

	if lf.Single != nil && lf.Sharded != nil && lf.Single.Throughput > 0 {
		check(lf.Sharded.Throughput >= minSpeedup*lf.Single.Throughput,
			"sharded throughput %.1f req/s ≥ %g × single %.1f req/s",
			lf.Sharded.Throughput, minSpeedup, lf.Single.Throughput)
	}

	if lf.Direct != nil && lf.Proxy != nil {
		dcold, okD := lf.Direct.Class("cold")
		pcold, okP := lf.Proxy.Class("cold")
		if okD && okP && dcold.P50Ms > 0 {
			check(pcold.P50Ms <= maxOverhead*dcold.P50Ms,
				"proxy cold p50 %.2fms ≤ %g × direct cold p50 %.2fms (hop overhead bounded)",
				pcold.P50Ms, maxOverhead, dcold.P50Ms)
		}
		if warm, ok := lf.Proxy.Class("warm"); ok && warm.CacheLookups > 0 {
			check(warm.HitRate() >= minHitRate,
				"proxy warm hit rate %.0f%% ≥ %.0f%% (ring affinity across processes)",
				100*warm.HitRate(), 100*minHitRate)
		} else {
			check(false, "proxy: warm class carries cache counters (affinity is measurable)")
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d load invariant(s) failed\n", failed)
		return 1
	}
	fmt.Println("benchguard: load snapshot satisfies all invariants")
	return 0
}
