package main

import (
	"encoding/json"
	"testing"

	"repro/internal/loadreport"
)

// goodLoad builds a snapshot satisfying every invariant.
func goodLoad() loadFile {
	mk := func(workers int, rps float64) loadreport.Summary {
		return loadreport.Summary{
			Workers: workers, Concurrency: 8, DurationSec: 10,
			Requests: int(rps * 10), Throughput: rps,
			Classes: []loadreport.ClassStats{
				{Class: "cold", Count: 40, P50Ms: 200, P99Ms: 400},
				{Class: "warm", Count: 100, P50Ms: 2, P99Ms: 8},
			},
		}
	}
	return loadFile{Single: mk(1, 50), Sharded: mk(4, 120)}
}

func writeLoad(t *testing.T, lf loadFile) string {
	t.Helper()
	data, err := json.Marshal(lf)
	if err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, "load.json", string(data))
}

func TestLoadGatePasses(t *testing.T) {
	if code := runLoadGate(writeLoad(t, goodLoad()), 10, 1.0); code != 0 {
		t.Fatalf("healthy snapshot exited %d", code)
	}
}

func TestLoadGateFailsOnErrors(t *testing.T) {
	lf := goodLoad()
	lf.Sharded.Errors = 3
	if code := runLoadGate(writeLoad(t, lf), 10, 1.0); code != 1 {
		t.Fatalf("errors in sharded run exited %d, want 1", code)
	}
}

func TestLoadGateFailsOnCollapsedWarmColdGap(t *testing.T) {
	lf := goodLoad()
	// Warm p50 only 2× below cold: the cache is not visibly working.
	for i := range lf.Single.Classes {
		if lf.Single.Classes[i].Class == "warm" {
			lf.Single.Classes[i].P50Ms = 100
		}
	}
	if code := runLoadGate(writeLoad(t, lf), 10, 1.0); code != 1 {
		t.Fatalf("collapsed warm/cold gap exited %d, want 1", code)
	}
}

func TestLoadGateFailsOnThroughputRegression(t *testing.T) {
	lf := goodLoad()
	lf.Sharded.Throughput = 30 // below the single worker's 50
	if code := runLoadGate(writeLoad(t, lf), 10, 1.0); code != 1 {
		t.Fatalf("sharded slower than single exited %d, want 1", code)
	}
}

func TestLoadGateFailsOnEmptyRun(t *testing.T) {
	lf := goodLoad()
	lf.Single = loadreport.Summary{}
	if code := runLoadGate(writeLoad(t, lf), 10, 1.0); code != 1 {
		t.Fatalf("empty single run exited %d, want 1", code)
	}
}

func TestLoadGateHonorsMinSpeedup(t *testing.T) {
	lf := goodLoad() // sharded 120 vs single 50 = 2.4×
	if code := runLoadGate(writeLoad(t, lf), 10, 2.0); code != 0 {
		t.Fatalf("2.4× speedup failed a 2.0 floor (exit %d)", code)
	}
	if code := runLoadGate(writeLoad(t, lf), 10, 3.0); code != 1 {
		t.Fatalf("2.4× speedup passed a 3.0 floor (exit %d)", code)
	}
}

func TestLoadGateRejectsGarbage(t *testing.T) {
	if code := runLoadGate(writeTemp(t, "bad.json", "{not json"), 10, 1.0); code != 2 {
		t.Fatalf("garbage snapshot exited %d, want 2", code)
	}
	if code := runLoadGate("/nonexistent/load.json", 10, 1.0); code != 2 {
		t.Fatalf("missing snapshot exited %d, want 2", code)
	}
}
