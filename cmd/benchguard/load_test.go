package main

import (
	"encoding/json"
	"testing"

	"repro/internal/loadreport"
)

// gate runs the load gate with the default thresholds CI uses.
func gate(t *testing.T, lf loadFile, warmFactor, minSpeedup float64) int {
	t.Helper()
	return runLoadGate(writeLoad(t, lf), warmFactor, minSpeedup, 3.0, 0.5)
}

// mkSummary builds one healthy run summary.
func mkSummary(workers int, rps float64) *loadreport.Summary {
	return &loadreport.Summary{
		Workers: workers, Concurrency: 8, DurationSec: 10,
		Requests: int(rps * 10), Throughput: rps,
		Classes: []loadreport.ClassStats{
			{Class: "cold", Count: 40, P50Ms: 200, P99Ms: 400, CacheHits: 0, CacheLookups: 40},
			{Class: "warm", Count: 100, P50Ms: 2, P99Ms: 8, CacheHits: 96, CacheLookups: 100},
		},
	}
}

// goodLoad builds a PR 8-shape snapshot satisfying every invariant.
func goodLoad() loadFile {
	return loadFile{Single: mkSummary(1, 50), Sharded: mkSummary(4, 120)}
}

// goodProxyLoad builds a PR 9-shape snapshot (direct vs proxy plus a
// membership-churn run) satisfying every invariant.
func goodProxyLoad() loadFile {
	return loadFile{
		Direct:     mkSummary(1, 60),
		Proxy:      mkSummary(2, 55),
		Membership: mkSummary(2, 50),
	}
}

func writeLoad(t *testing.T, lf loadFile) string {
	t.Helper()
	data, err := json.Marshal(lf)
	if err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, "load.json", string(data))
}

func TestLoadGatePasses(t *testing.T) {
	if code := gate(t, goodLoad(), 10, 1.0); code != 0 {
		t.Fatalf("healthy snapshot exited %d", code)
	}
}

func TestLoadGateFailsOnErrors(t *testing.T) {
	lf := goodLoad()
	lf.Sharded.Errors = 3
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("errors in sharded run exited %d, want 1", code)
	}
}

func TestLoadGateFailsOnCollapsedWarmColdGap(t *testing.T) {
	lf := goodLoad()
	// Warm p50 only 2× below cold: the cache is not visibly working.
	for i := range lf.Single.Classes {
		if lf.Single.Classes[i].Class == "warm" {
			lf.Single.Classes[i].P50Ms = 100
		}
	}
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("collapsed warm/cold gap exited %d, want 1", code)
	}
}

func TestLoadGateFailsOnThroughputRegression(t *testing.T) {
	lf := goodLoad()
	lf.Sharded.Throughput = 30 // below the single worker's 50
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("sharded slower than single exited %d, want 1", code)
	}
}

func TestLoadGateFailsOnEmptyRun(t *testing.T) {
	lf := goodLoad()
	lf.Single = &loadreport.Summary{}
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("empty single run exited %d, want 1", code)
	}
}

func TestLoadGateHonorsMinSpeedup(t *testing.T) {
	lf := goodLoad() // sharded 120 vs single 50 = 2.4×
	if code := gate(t, lf, 10, 2.0); code != 0 {
		t.Fatalf("2.4× speedup failed a 2.0 floor (exit %d)", code)
	}
	if code := gate(t, lf, 10, 3.0); code != 1 {
		t.Fatalf("2.4× speedup passed a 3.0 floor (exit %d)", code)
	}
}

func TestLoadGateRejectsGarbage(t *testing.T) {
	if code := runLoadGate(writeTemp(t, "bad.json", "{not json"), 10, 1.0, 3.0, 0.5); code != 2 {
		t.Fatalf("garbage snapshot exited %d, want 2", code)
	}
	if code := runLoadGate("/nonexistent/load.json", 10, 1.0, 3.0, 0.5); code != 2 {
		t.Fatalf("missing snapshot exited %d, want 2", code)
	}
	// A JSON object holding none of the known run shapes is equally
	// unusable — the guard must not silently pass by checking nothing.
	if code := runLoadGate(writeTemp(t, "empty.json", "{}"), 10, 1.0, 3.0, 0.5); code != 2 {
		t.Fatalf("runless snapshot exited %d, want 2", code)
	}
}

func TestLoadGateProxyPasses(t *testing.T) {
	if code := gate(t, goodProxyLoad(), 10, 1.0); code != 0 {
		t.Fatalf("healthy proxy snapshot exited %d", code)
	}
}

func TestLoadGateProxyFailsOnHopOverhead(t *testing.T) {
	lf := goodProxyLoad()
	// Proxy cold p50 at 4× the direct floor busts the 3× bound.
	for i := range lf.Proxy.Classes {
		if lf.Proxy.Classes[i].Class == "cold" {
			lf.Proxy.Classes[i].P50Ms = 800
			lf.Proxy.Classes[i].P99Ms = 1600
		}
	}
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("4× hop overhead exited %d, want 1", code)
	}
}

func TestLoadGateProxyFailsOnLostAffinity(t *testing.T) {
	lf := goodProxyLoad()
	// Warm repeats mostly missing: ring affinity is broken even if
	// latency happens to look fine.
	for i := range lf.Proxy.Classes {
		if lf.Proxy.Classes[i].Class == "warm" {
			lf.Proxy.Classes[i].CacheHits = 20
		}
	}
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("20%% proxy warm hit rate exited %d, want 1", code)
	}
}

func TestLoadGateProxyRequiresCacheCounters(t *testing.T) {
	lf := goodProxyLoad()
	// A snapshot without cache counters cannot prove affinity; the
	// gate must fail loudly rather than skip the check.
	for i := range lf.Proxy.Classes {
		lf.Proxy.Classes[i].CacheHits = 0
		lf.Proxy.Classes[i].CacheLookups = 0
	}
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("counterless proxy snapshot exited %d, want 1", code)
	}
}

func TestLoadGateMembershipChurnExemptFromLatencyShape(t *testing.T) {
	lf := goodProxyLoad()
	// A membership run's warm p50 legitimately degrades while keys
	// move; only errors fail it.
	for i := range lf.Membership.Classes {
		if lf.Membership.Classes[i].Class == "warm" {
			lf.Membership.Classes[i].P50Ms = 150
		}
	}
	if code := gate(t, lf, 10, 1.0); code != 0 {
		t.Fatalf("churny-but-clean membership run exited %d, want 0", code)
	}
	lf.Membership.Errors = 1
	if code := gate(t, lf, 10, 1.0); code != 1 {
		t.Fatalf("membership run with a dropped request exited %d, want 1", code)
	}
}
