package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseAllocsRawOutput(t *testing.T) {
	p := writeTemp(t, "raw.txt", `
goos: linux
BenchmarkGenerateCold300-8         	       3	3597756477 ns/op	406286536 B/op	   11873 allocs/op
BenchmarkCOOMerge/merge-sharded-8  	       3	  12345 ns/op	  100 B/op	   42 allocs/op
PASS
`)
	got, err := parseAllocs(p)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkGenerateCold300"] != 11873 {
		t.Errorf("cold300 = %d, want 11873 (cpu suffix must strip)", got["BenchmarkGenerateCold300"])
	}
	if got["BenchmarkCOOMerge/merge-sharded"] != 42 {
		t.Errorf("merge-sharded = %d, want 42", got["BenchmarkCOOMerge/merge-sharded"])
	}
}

func TestParseAllocsTest2JSON(t *testing.T) {
	// test2json splits one raw result line across Output events, and
	// two packages' events can interleave; the parser must reassemble
	// per package.
	p := writeTemp(t, "stream.json", `
{"Action":"output","Package":"repro","Output":"BenchmarkCOOMerge/merge-sharded\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkCOOMerge/merge-sharded         \t"}
{"Action":"output","Package":"repro/internal/api","Output":"BenchmarkGenerateCold300-4 \t       3\t3597756477 ns/op\t406286536 B/op\t   11873 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"       3\t  12345 ns/op\t     100 B/op\t      42 allocs/op\n"}
{"Action":"run","Package":"repro"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t44.469s\n"}
`)
	got, err := parseAllocs(p)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkGenerateCold300"] != 11873 {
		t.Errorf("cold300 = %d, want 11873", got["BenchmarkGenerateCold300"])
	}
	if got["BenchmarkCOOMerge/merge-sharded"] != 42 {
		t.Errorf("merge-sharded = %d, want 42 (split fragments must reassemble)", got["BenchmarkCOOMerge/merge-sharded"])
	}
}

func TestParseAllocsIgnoresLinesWithoutBenchmem(t *testing.T) {
	p := writeTemp(t, "nomem.txt", "BenchmarkNoMem-8\t10\t100 ns/op\n")
	got, err := parseAllocs(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from a run without -benchmem", got)
	}
}
