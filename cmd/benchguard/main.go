// Command benchguard is the allocation-regression gate: it compares
// the allocs/op of a fresh `go test -bench -benchmem` run against a
// committed baseline snapshot and fails when any shared benchmark
// regressed past the tolerance.
//
//	benchguard -baseline BENCH_PR7.json -current fresh.json
//
// With -load it instead gates a combined twload snapshot, asserting
// the machine-independent load invariants — zero errors, warm p50
// far below cold p50, sharded throughput at least matching the
// single worker. Two snapshot shapes are understood: the sharded-core
// pair ({"single": …, "sharded": …}, BENCH_PR8.json) and the cluster
// proxy triple ({"direct": …, "proxy": …, "membership": …},
// BENCH_PR9.json), which additionally bounds the proxy's cold-path
// hop overhead (-max-overhead) and pins the proxy's warm-class cache
// hit rate (-min-hit-rate) so cross-process ring affinity stays
// measurable:
//
//	benchguard -load BENCH_PR8.current.json
//	benchguard -load BENCH_PR9.current.json
//
// Both files may be either raw `go test -bench` output or the
// test2json stream produced by `go test -json` (the committed
// trajectory snapshots use the latter); benchguard extracts the
// benchmark result lines from either. CPU-count suffixes
// ("BenchmarkFoo-8" vs "BenchmarkFoo-4") are stripped so a laptop
// baseline compares against a CI runner.
//
// allocs/op is the gated metric on purpose: unlike ns/op it is
// essentially machine-independent for a fixed workload, so a >10%
// jump is a real code change (a lost pooling path, a new per-row
// closure), not runner noise. The additive slack absorbs the
// handful of allocations the runtime itself moves between versions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches a benchmark result line that carries -benchmem
// output, capturing the name and the allocs/op count.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

// cpuSuffix is the trailing GOMAXPROCS marker on benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// testEvent is the subset of the test2json stream benchguard reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// parseAllocs extracts name → allocs/op from a bench output file,
// accepting raw bench output or a test2json stream. Sub-benchmarks
// keep their full slash-separated names. test2json chops one raw
// output line into several Output events (the name fragment ends the
// first event, the timings arrive in the next), so the JSON path
// reassembles the raw stream per package before scanning lines.
func parseAllocs(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var raw strings.Builder
	perPkg := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Action != "output" {
				continue
			}
			b := perPkg[ev.Package]
			if b == nil {
				b = &strings.Builder{}
				perPkg[ev.Package] = b
			}
			b.WriteString(ev.Output)
			continue
		}
		raw.WriteString(line)
		raw.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range perPkg {
		raw.WriteString(b.String())
	}

	out := map[string]int64{}
	for _, line := range strings.Split(raw.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		allocs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		out[name] = allocs
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed bench snapshot (raw or test2json)")
	current := flag.String("current", "", "fresh bench run to check (raw or test2json)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth")
	slack := flag.Int64("slack", 64, "allowed absolute allocs/op growth on top of tolerance")
	loadPath := flag.String("load", "", "gate a combined twload snapshot instead of allocs/op")
	warmFactor := flag.Float64("warm-factor", 10, "with -load: required cold-p50 / warm-p50 ratio")
	minSpeedup := flag.Float64("min-speedup", 1.0, "with -load: required sharded/single throughput ratio")
	maxOverhead := flag.Float64("max-overhead", 3.0, "with -load: allowed proxy/direct cold-p50 ratio")
	minHitRate := flag.Float64("min-hit-rate", 0.5, "with -load: required proxy warm-class cache hit rate")
	flag.Parse()
	if *loadPath != "" {
		os.Exit(runLoadGate(*loadPath, *warmFactor, *minSpeedup, *maxOverhead, *minHitRate))
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are both required")
		os.Exit(2)
	}

	base, err := parseAllocs(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseAllocs(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read current: %v\n", err)
		os.Exit(2)
	}

	var shared []string
	for name := range base {
		if _, ok := cur[name]; ok {
			shared = append(shared, name)
		}
	}
	if len(shared) == 0 {
		// An empty intersection means the gate is comparing nothing:
		// a renamed benchmark must not silently disable the guard.
		fmt.Fprintf(os.Stderr, "benchguard: no shared benchmarks between %s (%d) and %s (%d)\n",
			*baseline, len(base), *current, len(cur))
		os.Exit(1)
	}
	sort.Strings(shared)

	failed := 0
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "baseline", "current", "delta")
	for _, name := range shared {
		b, c := base[name], cur[name]
		limit := int64(float64(b)*(1+*tolerance)) + *slack
		delta := "ok"
		if b > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(c-b)/float64(b))
		}
		mark := ""
		if c > limit {
			mark = "  REGRESSED"
			failed++
		}
		fmt.Printf("%-60s %14d %14d %8s%s\n", name, b, c, delta, mark)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmark(s) regressed past %.0f%%+%d allocs/op\n",
			failed, *tolerance*100, *slack)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmark(s) within %.0f%%+%d allocs/op of baseline\n",
		len(shared), *tolerance*100, *slack)
}
