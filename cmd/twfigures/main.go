// Command twfigures regenerates every table and figure from the
// paper into an output directory (text renders plus voxel-exact PPM
// screenshots) and prints the reproduction summary: the same rows
// the paper reports, produced by this repository's code.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/figures"
	"repro/internal/term"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twfigures:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "out", "output directory for regenerated artifacts")
	only := flag.String("only", "", "regenerate a single artifact by ID (T1,T2,F1..F10)")
	flag.Parse()

	// Artifacts are files; keep them free of escape codes.
	term.SetEnabled(false)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	figs := figures.All()
	if *only != "" {
		f, ok := figures.Lookup(*only)
		if !ok {
			return fmt.Errorf("unknown artifact %q", *only)
		}
		figs = []figures.Figure{f}
	}

	total := 0
	for _, f := range figs {
		arts, summary, err := f.Generate()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", f.ID, f.Paper, err)
		}
		for _, a := range arts {
			path := filepath.Join(*out, a.Name)
			var data []byte
			if a.PPM != nil {
				data = a.PPM
			} else {
				data = []byte(a.Text)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			total++
		}
		fmt.Printf("%-3s %-9s %d file(s) — %s\n", f.ID, f.Paper, len(arts), summary)
	}
	if *only == "" {
		summary, err := figures.Summary()
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "summary.txt")
		if err := os.WriteFile(path, []byte(summary), 0o644); err != nil {
			return err
		}
		total++
	}
	fmt.Printf("wrote %d files to %s\n", total, *out)
	return nil
}
