// Command twsim runs network scenario simulations and shows the
// traffic matrices they produce, window by window, with the pattern
// classifier's reading of each window — the analyst's workflow the
// game trains students for. It can also export any window as a
// learning module, turning live traffic into lesson content.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}

func run() error {
	scenario := flag.String("scenario", "ddos", "scenario: background, scan, attack, ddos")
	seed := flag.Int64("seed", 42, "random seed")
	duration := flag.Float64("duration", 40, "scenario length in seconds")
	window := flag.Float64("window", 10, "aggregation window in seconds")
	exportPath := flag.String("export", "", "export the busiest window as a module JSON file")
	plain := flag.Bool("plain", false, "disable ANSI colors")
	flag.Parse()
	if *plain {
		term.SetEnabled(false)
	}

	net := netsim.StandardNetwork()
	rng := rand.New(rand.NewSource(*seed))
	zones, err := net.Zones()
	if err != nil {
		return err
	}

	var trace netsim.Trace
	var truth []string
	switch *scenario {
	case "background":
		trace, err = netsim.Background(net, rng, *duration, 4)
	case "scan":
		trace, err = netsim.Scan(net, rng, *duration)
	case "attack":
		var phases []netsim.AttackPhase
		trace, phases, err = netsim.AttackScenario(net, rng, *duration)
		for _, p := range phases {
			truth = append(truth, fmt.Sprintf("[%5.1fs,%5.1fs) %s", p.Start, p.End, p.Stage))
		}
	case "ddos":
		var phases []netsim.DDoSPhase
		trace, phases, err = netsim.DDoSScenario(net, rng, *duration)
		for _, p := range phases {
			truth = append(truth, fmt.Sprintf("[%5.1fs,%5.1fs) %s", p.Start, p.End, p.Component))
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	fmt.Printf("scenario %s: %d events, %d packets over %.1fs\n",
		*scenario, len(trace), trace.TotalPackets(), *duration)
	if len(truth) > 0 {
		fmt.Println("ground truth schedule:")
		for _, line := range truth {
			fmt.Println("  " + line)
		}
	}

	windows, err := trace.Windows(net, *window, *duration)
	if err != nil {
		return err
	}
	roles, rolesErr := patterns.AssignDDoSRoles(zones)

	var busiest *matrix.Dense
	busiestSum := -1
	for _, w := range windows {
		fmt.Printf("\n── window [%5.1fs,%5.1fs): %d events, %d packets\n", w.Start, w.End, w.Events, w.Matrix.Sum())
		fb, err := render.Matrix2D(w.Matrix, render.Matrix2DOptions{
			Labels: net.Labels(),
			Colors: zones.ColorMatrix(),
		})
		if err != nil {
			return err
		}
		fmt.Print(fb.ANSI())
		if w.Matrix.NNZ() == 0 {
			continue
		}
		stage, conf := patterns.ClassifyAttackStage(w.Matrix, zones)
		fmt.Printf("   attack-stage reading: %s (%.2f)\n", stage, conf)
		if rolesErr == nil {
			component, dconf := patterns.ClassifyDDoS(w.Matrix, roles)
			fmt.Printf("   ddos reading:         %s (%.2f)\n", component, dconf)
		}
		if hubs := matrix.Supernodes(w.Matrix, patterns.SupernodeFanThreshold); len(hubs) > 0 {
			h := hubs[0]
			fmt.Printf("   busiest hub:          %s (%s fan %d, %d packets)\n",
				net.Labels()[h.Index], h.Direction, h.Fan, h.Packets)
		}
		if w.Matrix.Sum() > busiestSum {
			busiestSum = w.Matrix.Sum()
			busiest = w.Matrix
		}
	}

	if *exportPath != "" && busiest != nil {
		m := moduleFromMatrix(busiest, net, zones, *scenario)
		data, err := core.EncodeModule(m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*exportPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nexported busiest window as %s\n", *exportPath)
	}
	return nil
}

// moduleFromMatrix wraps a captured traffic matrix as a learning
// module (no question; an educator adds one in a text editor).
func moduleFromMatrix(m *matrix.Dense, net *netsim.Network, zones patterns.Zones, scenario string) *core.Module {
	clamped := m.Clone()
	clamped.Apply(func(v int) int {
		if v > core.MaxDisplayPackets {
			return core.MaxDisplayPackets
		}
		return v
	})
	name := scenario
	if name != "" {
		name = strings.ToUpper(name[:1]) + name[1:]
	}
	return &core.Module{
		Name:                "Captured " + name + " Traffic",
		Size:                core.FormatSize(m.Rows()),
		Author:              "twsim",
		AxisLabels:          net.Labels(),
		TrafficMatrix:       clamped.ToRows(),
		TrafficMatrixColors: zones.ColorMatrix().ToRows(),
		HasQuestion:         false,
	}
}
