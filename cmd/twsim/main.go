// Command twsim runs network scenario simulations from the netsim
// catalog and shows the traffic matrices they produce, window by
// window, with the pattern classifiers' reading of each window — the
// analyst's workflow the game trains students for. It is a thin
// client of the internal/api façade: one typed GenerateRequest runs
// the whole pipeline (concurrent generation, sparse windowing,
// classification), and twsim only renders the result. The same
// request served over HTTP is cmd/twserve; the CLI and the server
// are the same API call.
//
// Beyond the catalog, -spec runs arbitrary scenario mixtures built
// with the composition algebra — an inline expression like
//
//	twsim -spec 'overlay(background, sequence(scan@10s, ddos))'
//
// or a file holding one — and the aggregate block adds the mixture
// classifier's attempt to disentangle the layers. -json emits the
// complete result as machine-readable JSON (the api wire form).
// Interrupting a long run (Ctrl-C) cancels the request context,
// which aborts the sharded generation workers mid-run.
//
// -stream switches to the incremental path (api.GenerateStream):
// windows print the moment the engine finalizes them instead of
// after the whole run, so a long simulation shows its first window
// in seconds. With -json, -stream emits the raw NDJSON frame stream
// (api.StreamFrame per line — the same wire form twserve's
// /v1/generate/stream serves). Streaming bypasses the result cache
// and cannot -export (the busiest window is only known at the end).
//
// Run with -list to see the scenario catalog.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args with a private
// FlagSet and writes all output to stdout, so golden tests can drive
// the full command without forking a process. The context is the
// request's lifetime — main wires it to Ctrl-C.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("twsim", flag.ContinueOnError)
	// Parse errors are reported once by the caller (to stderr in
	// production); only an explicit -h prints usage, to stdout.
	fs.SetOutput(io.Discard)
	scenario := fs.String("scenario", "ddos", "scenario name from the catalog (see -list)")
	spec := fs.String("spec", "", "composed scenario: an expression like 'overlay(background, scan)' or a file holding one (overrides -scenario)")
	list := fs.Bool("list", false, "list the scenario catalog and exit")
	seed := fs.Int64("seed", 42, "random seed")
	duration := fs.Float64("duration", 40, "scenario length in seconds")
	rate := fs.Float64("rate", 4, "intensity hint in events/sec for open-ended scenarios")
	scale := fs.Int("scale", 1, "volume multiplier (script repetitions)")
	workers := fs.Int("workers", 0, "generation workers (0 = all CPUs)")
	hosts := fs.Int("hosts", 0, "network size (≤10 = the paper's standard 10-host network)")
	window := fs.Float64("window", 10, "aggregation window in seconds")
	noRender := fs.Bool("norender", false, "skip per-window matrix rendering (throughput runs)")
	stream := fs.Bool("stream", false, "stream windows as they are generated instead of waiting for the whole run")
	jsonOut := fs.Bool("json", false, "emit the full result as JSON (the api wire form) instead of text")
	exportPath := fs.String("export", "", "export the busiest window as a module JSON file")
	plain := fs.Bool("plain", false, "disable ANSI colors")
	if err := fs.Parse(args); err != nil {
		// -h/-help is a success, not an error (matching the old
		// ExitOnError behaviour's exit 0).
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil
		}
		return fmt.Errorf("%w (run twsim -h for usage)", err)
	}
	if *plain {
		term.SetEnabled(false)
	}

	svc := api.New()
	if *list {
		return listCatalog(svc, stdout)
	}

	// Spec-file resolution stays in the front-end: the service never
	// reads the filesystem.
	requested := *scenario
	if *spec != "" {
		canonical, err := api.ResolveSpecArg(*spec, os.ReadFile)
		if err != nil {
			return err
		}
		requested = canonical
	}
	if *duration <= 0 {
		return fmt.Errorf("duration must be positive, got %g", *duration)
	}
	if *rate <= 0 {
		return fmt.Errorf("rate must be positive, got %g", *rate)
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be ≥ 1, got %d", *scale)
	}
	if *window <= 0 {
		return fmt.Errorf("window length must be positive, got %g", *window)
	}

	req := api.NewGenerateRequest(requested,
		api.WithSeed(*seed),
		api.WithHosts(*hosts),
		api.WithWorkers(*workers),
		api.WithParams(*duration, *rate, *scale),
		api.WithWindow(*window),
	)

	if *stream {
		if *exportPath != "" {
			return fmt.Errorf("-export needs the complete result; run without -stream")
		}
		return runStream(ctx, svc, stdout, req, *jsonOut, *noRender)
	}

	res, err := svc.Generate(ctx, req)
	if err != nil {
		return err
	}

	if *jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	} else if err := printResult(stdout, res, *noRender); err != nil {
		return err
	}

	if *exportPath != "" {
		if w := busiestWindow(res); w != nil {
			m := api.WindowModule(res, w, "twsim")
			data, err := core.EncodeModule(m)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*exportPath, data, 0o644); err != nil {
				return err
			}
			if !*jsonOut {
				fmt.Fprintf(stdout, "\nexported busiest window as %s\n", *exportPath)
			}
		}
	}
	return nil
}

// printResult renders a generate result as the analyst's text view.
func printResult(stdout io.Writer, res *api.GenerateResult, noRender bool) error {
	fmt.Fprintf(stdout, "scenario %s on %d hosts: %d events, %d packets over %.1fs\n",
		res.Scenario, res.Hosts, res.Events, res.Packets, res.Duration)
	fmt.Fprintf(stdout, "generated in %v (%.0f events/sec, workers=%d)\n",
		res.Timings.Generate.Round(time.Microsecond),
		float64(res.Events)/res.Timings.Generate.Seconds(), res.Workers)
	fmt.Fprintf(stdout, "expected shape: %s\n", res.Shape)
	if len(res.Schedule) > 0 {
		fmt.Fprintln(stdout, "ground truth schedule:")
		for _, ph := range res.Schedule {
			fmt.Fprintf(stdout, "  [%5.1fs,%5.1fs) %s\n", ph.Start, ph.End, ph.Label)
		}
	}

	// The zone color grid is an O(n²) dense build; derive it once,
	// and only when windows will actually be drawn.
	var colors *matrix.Dense
	if !noRender && len(res.Windows) > 0 {
		colors = res.Zones.ColorMatrix()
	}
	for i := range res.Windows {
		if err := printWindow(stdout, &res.Windows[i], res.Labels, colors, noRender); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "\n── aggregate readings (sparse CSR path)\n   sparse timings: aggregate %v, profile+classify %v\n",
		res.Timings.Aggregate.Round(time.Microsecond), res.Timings.Analyze.Round(time.Microsecond))
	printAggregate(stdout, res.Aggregate, res.ComposedOf)
	return nil
}

// printWindow renders one window of the analyst view: the text view
// shared verbatim by the batch and streaming paths.
func printWindow(stdout io.Writer, w *api.WindowResult, labels []string, colors *matrix.Dense, noRender bool) error {
	fmt.Fprintf(stdout, "\n── window [%5.1fs,%5.1fs): %d events, %d packets\n", w.Start, w.End, w.Events, w.Packets)
	if w.Dropped > 0 {
		fmt.Fprintf(stdout, "   (%d packets dropped: events name hosts outside the axis)\n", w.Dropped)
	}
	if !noRender {
		fb, err := render.Matrix2D(w.Matrix.ToDense(), render.Matrix2DOptions{
			Labels: labels,
			Colors: colors,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, fb.ANSI())
	}
	if w.AttackStage != nil {
		fmt.Fprintf(stdout, "   attack-stage reading: %s (%.2f)\n", w.AttackStage.Label, w.AttackStage.Confidence)
	}
	if w.DDoS != nil {
		fmt.Fprintf(stdout, "   ddos reading:         %s (%.2f)\n", w.DDoS.Label, w.DDoS.Confidence)
	}
	if w.Hub != nil {
		fmt.Fprintf(stdout, "   busiest hub:          %s (%s fan %d, %d packets)\n",
			w.Hub.Host, w.Hub.Direction, w.Hub.Fan, w.Hub.Packets)
	}
	return nil
}

// printAggregate renders the whole-run classifier block, shared by
// the batch footer and the stream's summary frame.
func printAggregate(stdout io.Writer, agg api.Aggregate, composedOf []string) {
	fmt.Fprintf(stdout, "   n=%d nnz=%d (density %.2f%%) packets=%d max-cell=%d\n",
		agg.Profile.N, agg.Profile.NNZ, agg.Profile.DensityPct, agg.Profile.Packets, agg.Profile.MaxCell)
	if agg.Behavior != nil {
		fmt.Fprintf(stdout, "   behavior:  %s (%.2f)\n", agg.Behavior.Label, agg.Behavior.Confidence)
	}
	fmt.Fprintf(stdout, "   topology:  %s\n", agg.Topology)
	fmt.Fprintf(stdout, "   attack:    %s (%.2f)\n", agg.Attack.Label, agg.Attack.Confidence)
	if len(agg.Mixture) > 0 {
		parts := make([]string, len(agg.Mixture))
		for i, c := range agg.Mixture {
			parts[i] = fmt.Sprintf("%s (%.2f)", c.Label, c.Confidence)
		}
		fmt.Fprintf(stdout, "   mixture:   %s\n", strings.Join(parts, " + "))
	}
	if len(composedOf) > 0 {
		fmt.Fprintf(stdout, "   composed of: %s\n", strings.Join(composedOf, " + "))
	}
}

// runStream drives api.GenerateStream: in JSON mode it relays the raw
// NDJSON frames; in text mode it prints each window the moment the
// engine seals it, using the same renderers as the batch view.
func runStream(ctx context.Context, svc *api.Service, stdout io.Writer, req api.GenerateRequest, jsonOut, noRender bool) error {
	var (
		colors     *matrix.Dense
		labels     []string
		composedOf []string
		start      = time.Now()
	)
	return svc.GenerateStream(ctx, req, func(f api.StreamFrame) error {
		if jsonOut {
			return api.EncodeFrame(stdout, f)
		}
		switch f.Type {
		case api.FrameMeta:
			m := f.Meta
			labels = m.Labels
			composedOf = m.ComposedOf
			fmt.Fprintf(stdout, "scenario %s on %d hosts: streaming %d windows of %gs over %.1fs (workers=%d)\n",
				m.Scenario, m.Hosts, m.Windows, m.Window, m.Duration, m.Workers)
			fmt.Fprintf(stdout, "expected shape: %s\n", m.Shape)
			if len(m.Schedule) > 0 {
				fmt.Fprintln(stdout, "ground truth schedule:")
				for _, ph := range m.Schedule {
					fmt.Fprintf(stdout, "  [%5.1fs,%5.1fs) %s\n", ph.Start, ph.End, ph.Label)
				}
			}
			if !noRender {
				// The zone color grid matches the service's network layout
				// for the same host count.
				if zones, err := netsim.ScaledNetwork(m.Hosts).Zones(); err == nil {
					colors = zones.ColorMatrix()
				}
			}
		case api.FrameWindow:
			return printWindow(stdout, f.Window, labels, colors, noRender)
		case api.FrameSummary:
			s := f.Summary
			fmt.Fprintf(stdout, "\n── stream complete in %v: %d events, %d packets\n",
				time.Since(start).Round(time.Millisecond), s.Events, s.Packets)
			fmt.Fprintln(stdout, "── aggregate readings (sparse CSR path)")
			printAggregate(stdout, s.Aggregate, composedOf)
		}
		return nil
	})
}

// busiestWindow picks the non-empty window with the most packets
// (first wins ties), nil when every window is empty or there are
// none — an all-quiet run must not export an all-zero module.
func busiestWindow(res *api.GenerateResult) *api.WindowResult {
	var busiest *api.WindowResult
	sum := 0
	for i := range res.Windows {
		if res.Windows[i].Packets > sum {
			sum = res.Windows[i].Packets
			busiest = &res.Windows[i]
		}
	}
	return busiest
}

// listCatalog prints every registered scenario with its shape and
// description.
func listCatalog(svc *api.Service, stdout io.Writer) error {
	fmt.Fprintln(stdout, "scenario catalog:")
	for _, s := range svc.Catalog(context.Background()).Scenarios {
		fmt.Fprintf(stdout, "  %-12s %s\n", s.Name, s.Description)
		fmt.Fprintf(stdout, "  %-12s └ shape: %s\n", "", s.Shape)
	}
	return nil
}
