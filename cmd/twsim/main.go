// Command twsim runs network scenario simulations from the netsim
// catalog and shows the traffic matrices they produce, window by
// window, with the pattern classifiers' reading of each window — the
// analyst's workflow the game trains students for. Generation runs
// on the concurrent scenario engine (-workers), scales to larger
// networks (-hosts) and volumes (-scale), and can export any window
// as a learning module, turning live traffic into lesson content.
// Beyond the catalog, -spec runs arbitrary scenario mixtures built
// with the composition algebra — an inline expression like
//
//	twsim -spec 'overlay(background, sequence(scan@10s, ddos))'
//
// or a file holding one — and the aggregate block adds the mixture
// classifier's attempt to disentangle the layers.
// The whole-run aggregate readings fold the trace into a CSR and
// classify it through the matrix.Matrix accessor, reporting the
// sparse-path timings — the aggregate analysis never materializes an
// n² matrix (the per-window view still renders dense matrices, which
// is inherent to drawing them).
//
// Run with -list to see the scenario catalog.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args with a private
// FlagSet and writes all output to stdout, so golden tests can drive
// the full command without forking a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("twsim", flag.ContinueOnError)
	// Parse errors are reported once by the caller (to stderr in
	// production); only an explicit -h prints usage, to stdout.
	fs.SetOutput(io.Discard)
	scenario := fs.String("scenario", "ddos", "scenario name from the catalog (see -list)")
	spec := fs.String("spec", "", "composed scenario: an expression like 'overlay(background, scan)' or a file holding one (overrides -scenario)")
	list := fs.Bool("list", false, "list the scenario catalog and exit")
	seed := fs.Int64("seed", 42, "random seed")
	duration := fs.Float64("duration", 40, "scenario length in seconds")
	rate := fs.Float64("rate", 4, "intensity hint in events/sec for open-ended scenarios")
	scale := fs.Int("scale", 1, "volume multiplier (script repetitions)")
	workers := fs.Int("workers", 0, "generation workers (0 = all CPUs)")
	hosts := fs.Int("hosts", 0, "network size (≤10 = the paper's standard 10-host network)")
	window := fs.Float64("window", 10, "aggregation window in seconds")
	noRender := fs.Bool("norender", false, "skip per-window matrix rendering (throughput runs)")
	exportPath := fs.String("export", "", "export the busiest window as a module JSON file")
	plain := fs.Bool("plain", false, "disable ANSI colors")
	if err := fs.Parse(args); err != nil {
		// -h/-help is a success, not an error (matching the old
		// ExitOnError behaviour's exit 0).
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil
		}
		return fmt.Errorf("%w (run twsim -h for usage)", err)
	}
	if *plain {
		term.SetEnabled(false)
	}

	if *list {
		return listCatalog(stdout)
	}

	var s netsim.Scenario
	if *spec != "" {
		var err error
		if s, err = netsim.LoadSpec(*spec, os.ReadFile); err != nil {
			return err
		}
	} else {
		var ok bool
		if s, ok = netsim.LookupScenario(*scenario); !ok {
			return fmt.Errorf("unknown scenario %q; available: %s (or compose one with -spec)",
				*scenario, strings.Join(catalogNames(), ", "))
		}
	}
	if *duration <= 0 {
		return fmt.Errorf("duration must be positive, got %g", *duration)
	}
	if *rate <= 0 {
		return fmt.Errorf("rate must be positive, got %g", *rate)
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be ≥ 1, got %d", *scale)
	}
	net := netsim.ScaledNetwork(*hosts)
	zones, err := net.Zones()
	if err != nil {
		return err
	}
	p := netsim.Params{Duration: *duration, Rate: *rate, Scale: *scale}

	start := time.Now()
	trace, err := netsim.GenerateTrace(s, net, *seed, *workers, p)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "scenario %s on %d hosts: %d events, %d packets over %.1fs\n",
		s.Name(), net.Len(), len(trace), trace.TotalPackets(), *duration)
	nworkers := *workers
	if nworkers <= 0 {
		nworkers = runtime.NumCPU()
	}
	fmt.Fprintf(stdout, "generated in %v (%.0f events/sec, workers=%d)\n",
		elapsed.Round(time.Microsecond),
		float64(len(trace))/elapsed.Seconds(), nworkers)
	fmt.Fprintf(stdout, "expected shape: %s\n", s.Shape())
	if sched, ok := s.(netsim.Scheduler); ok {
		fmt.Fprintln(stdout, "ground truth schedule:")
		for _, ph := range sched.Schedule(p) {
			fmt.Fprintf(stdout, "  [%5.1fs,%5.1fs) %s\n", ph.Start, ph.End, ph.Label)
		}
	}

	// The per-window view runs on the single-pass sparse window
	// engine: the trace is folded once into per-window CSRs, and a
	// window densifies only when its matrix is actually drawn.
	windows, err := trace.WindowsCSR(net, *window, *duration)
	if err != nil {
		return err
	}
	roles, rolesErr := patterns.AssignDDoSRoles(zones)

	var busiest *matrix.CSR
	busiestSum := -1
	for _, w := range windows {
		fmt.Fprintf(stdout, "\n── window [%5.1fs,%5.1fs): %d events, %d packets\n", w.Start, w.End, w.Events, w.Matrix.Sum())
		if w.Dropped > 0 {
			fmt.Fprintf(stdout, "   (%d packets dropped: events name hosts outside the axis)\n", w.Dropped)
		}
		if !*noRender {
			fb, err := render.Matrix2D(w.Matrix.ToDense(), render.Matrix2DOptions{
				Labels: net.Labels(),
				Colors: zones.ColorMatrix(),
			})
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, fb.ANSI())
		}
		if w.Matrix.NNZ() == 0 {
			continue
		}
		stage, conf := patterns.ClassifyAttackStageOf(w.Matrix, zones)
		fmt.Fprintf(stdout, "   attack-stage reading: %s (%.2f)\n", stage, conf)
		if rolesErr == nil {
			component, dconf := patterns.ClassifyDDoSOf(w.Matrix, roles)
			fmt.Fprintf(stdout, "   ddos reading:         %s (%.2f)\n", component, dconf)
		}
		if hubs := matrix.SupernodesOf(w.Matrix, patterns.SupernodeFanThreshold); len(hubs) > 0 {
			h := hubs[0]
			fmt.Fprintf(stdout, "   busiest hub:          %s (%s fan %d, %d packets)\n",
				net.Labels()[h.Index], h.Direction, h.Fan, h.Packets)
		}
		if w.Matrix.Sum() > busiestSum {
			busiestSum = w.Matrix.Sum()
			busiest = w.Matrix
		}
	}

	// The whole-run readings go through the sparse path: the trace
	// already in hand folds into a CSR in one linear pass and is
	// analyzed through the accessor interface — no second generation
	// run, no dense n² materialization.
	aggStart := time.Now()
	csr, _ := trace.SparseMatrix(net)
	aggElapsed := time.Since(aggStart)
	analyzeStart := time.Now()
	profile := matrix.ProfileOf(csr)
	behavior, bconf := patterns.ClassifyBehaviorOf(csr, zones)
	topology := patterns.ClassifyTopologyOf(csr, zones)
	stage, sconf := patterns.ClassifyAttackStageOf(csr, zones)
	mixture := patterns.ClassifyMixtureOf(csr, zones)
	analyzeElapsed := time.Since(analyzeStart)

	fmt.Fprintln(stdout, "\n── aggregate readings (sparse CSR path)")
	fmt.Fprintf(stdout, "   sparse timings: aggregate %v, profile+classify %v\n",
		aggElapsed.Round(time.Microsecond), analyzeElapsed.Round(time.Microsecond))
	density := 0.0
	if profile.N > 0 {
		density = 100 * float64(profile.NNZ) / (float64(profile.N) * float64(profile.N))
	}
	fmt.Fprintf(stdout, "   n=%d nnz=%d (density %.2f%%) packets=%d max-cell=%d\n",
		profile.N, profile.NNZ, density, profile.Sum, profile.MaxEntry)
	if behavior != patterns.BehaviorUnknown {
		fmt.Fprintf(stdout, "   behavior:  %s (%.2f)\n", behavior, bconf)
	}
	fmt.Fprintf(stdout, "   topology:  %s\n", topology)
	fmt.Fprintf(stdout, "   attack:    %s (%.2f)\n", stage, sconf)
	if len(mixture) > 0 {
		parts := make([]string, len(mixture))
		for i, c := range mixture {
			parts[i] = fmt.Sprintf("%s (%.2f)", c.Label, c.Score)
		}
		fmt.Fprintf(stdout, "   mixture:   %s\n", strings.Join(parts, " + "))
	}
	if comp, ok := s.(netsim.Composite); ok {
		names := make([]string, 0, len(comp.Components()))
		for _, leaf := range netsim.Leaves(s) {
			names = append(names, leaf.Name())
		}
		fmt.Fprintf(stdout, "   composed of: %s\n", strings.Join(names, " + "))
	}

	if *exportPath != "" && busiest != nil {
		m := moduleFromMatrix(busiest.ToDense(), net, zones, s.Name())
		data, err := core.EncodeModule(m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*exportPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nexported busiest window as %s\n", *exportPath)
	}
	return nil
}

// catalogNames returns the registered scenario names in catalog
// order, for error messages pointing lost users at -list.
func catalogNames() []string {
	var names []string
	for _, s := range netsim.Scenarios() {
		names = append(names, s.Name())
	}
	return names
}

// listCatalog prints every registered scenario with its shape and
// description.
func listCatalog(stdout io.Writer) error {
	fmt.Fprintln(stdout, "scenario catalog:")
	for _, s := range netsim.Scenarios() {
		fmt.Fprintf(stdout, "  %-12s %s\n", s.Name(), s.Description())
		fmt.Fprintf(stdout, "  %-12s └ shape: %s\n", "", s.Shape())
	}
	return nil
}

// moduleFromMatrix wraps a captured traffic matrix as a learning
// module (no question; an educator adds one in a text editor).
func moduleFromMatrix(m *matrix.Dense, net *netsim.Network, zones patterns.Zones, scenario string) *core.Module {
	clamped := m.Clone()
	clamped.Apply(func(v int) int {
		if v > core.MaxDisplayPackets {
			return core.MaxDisplayPackets
		}
		return v
	})
	name := scenario
	if name != "" {
		name = strings.ToUpper(name[:1]) + name[1:]
	}
	return &core.Module{
		Name:                "Captured " + name + " Traffic",
		Size:                core.FormatSize(m.Rows()),
		Author:              "twsim",
		AxisLabels:          net.Labels(),
		TrafficMatrix:       clamped.ToRows(),
		TrafficMatrixColors: zones.ColorMatrix().ToRows(),
		HasQuestion:         false,
	}
}
