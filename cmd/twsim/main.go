// Command twsim runs network scenario simulations from the netsim
// catalog and shows the traffic matrices they produce, window by
// window, with the pattern classifiers' reading of each window — the
// analyst's workflow the game trains students for. Generation runs
// on the concurrent scenario engine (-workers), scales to larger
// networks (-hosts) and volumes (-scale), and can export any window
// as a learning module, turning live traffic into lesson content.
//
// Run with -list to see the scenario catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}

func run() error {
	scenario := flag.String("scenario", "ddos", "scenario name from the catalog (see -list)")
	list := flag.Bool("list", false, "list the scenario catalog and exit")
	seed := flag.Int64("seed", 42, "random seed")
	duration := flag.Float64("duration", 40, "scenario length in seconds")
	rate := flag.Float64("rate", 4, "intensity hint in events/sec for open-ended scenarios")
	scale := flag.Int("scale", 1, "volume multiplier (script repetitions)")
	workers := flag.Int("workers", 0, "generation workers (0 = all CPUs)")
	hosts := flag.Int("hosts", 0, "network size (≤10 = the paper's standard 10-host network)")
	window := flag.Float64("window", 10, "aggregation window in seconds")
	noRender := flag.Bool("norender", false, "skip per-window matrix rendering (throughput runs)")
	exportPath := flag.String("export", "", "export the busiest window as a module JSON file")
	plain := flag.Bool("plain", false, "disable ANSI colors")
	flag.Parse()
	if *plain {
		term.SetEnabled(false)
	}

	if *list {
		return listCatalog()
	}

	s, ok := netsim.LookupScenario(*scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (run with -list to see the catalog)", *scenario)
	}
	if *duration <= 0 {
		return fmt.Errorf("duration must be positive, got %g", *duration)
	}
	if *rate <= 0 {
		return fmt.Errorf("rate must be positive, got %g", *rate)
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be ≥ 1, got %d", *scale)
	}
	net := netsim.ScaledNetwork(*hosts)
	zones, err := net.Zones()
	if err != nil {
		return err
	}
	p := netsim.Params{Duration: *duration, Rate: *rate, Scale: *scale}

	start := time.Now()
	trace, err := netsim.GenerateTrace(s, net, *seed, *workers, p)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("scenario %s on %d hosts: %d events, %d packets over %.1fs\n",
		s.Name(), net.Len(), len(trace), trace.TotalPackets(), *duration)
	nworkers := *workers
	if nworkers <= 0 {
		nworkers = runtime.NumCPU()
	}
	fmt.Printf("generated in %v (%.0f events/sec, workers=%d)\n",
		elapsed.Round(time.Microsecond),
		float64(len(trace))/elapsed.Seconds(), nworkers)
	fmt.Printf("expected shape: %s\n", s.Shape())
	if sched, ok := s.(netsim.Scheduler); ok {
		fmt.Println("ground truth schedule:")
		for _, ph := range sched.Schedule(p) {
			fmt.Printf("  [%5.1fs,%5.1fs) %s\n", ph.Start, ph.End, ph.Label)
		}
	}

	windows, err := trace.Windows(net, *window, *duration)
	if err != nil {
		return err
	}
	roles, rolesErr := patterns.AssignDDoSRoles(zones)

	var busiest *matrix.Dense
	busiestSum := -1
	for _, w := range windows {
		fmt.Printf("\n── window [%5.1fs,%5.1fs): %d events, %d packets\n", w.Start, w.End, w.Events, w.Matrix.Sum())
		if !*noRender {
			fb, err := render.Matrix2D(w.Matrix, render.Matrix2DOptions{
				Labels: net.Labels(),
				Colors: zones.ColorMatrix(),
			})
			if err != nil {
				return err
			}
			fmt.Print(fb.ANSI())
		}
		if w.Matrix.NNZ() == 0 {
			continue
		}
		stage, conf := patterns.ClassifyAttackStage(w.Matrix, zones)
		fmt.Printf("   attack-stage reading: %s (%.2f)\n", stage, conf)
		if rolesErr == nil {
			component, dconf := patterns.ClassifyDDoS(w.Matrix, roles)
			fmt.Printf("   ddos reading:         %s (%.2f)\n", component, dconf)
		}
		if hubs := matrix.Supernodes(w.Matrix, patterns.SupernodeFanThreshold); len(hubs) > 0 {
			h := hubs[0]
			fmt.Printf("   busiest hub:          %s (%s fan %d, %d packets)\n",
				net.Labels()[h.Index], h.Direction, h.Fan, h.Packets)
		}
		if w.Matrix.Sum() > busiestSum {
			busiestSum = w.Matrix.Sum()
			busiest = w.Matrix
		}
	}

	// The whole-run readings: aggregate the trace already in hand
	// and ask every classifier family.
	aggregate, _ := trace.Matrix(net)
	fmt.Println("\n── aggregate readings")
	if behavior, conf := patterns.ClassifyBehavior(aggregate, zones); behavior != patterns.BehaviorUnknown {
		fmt.Printf("   behavior:  %s (%.2f)\n", behavior, conf)
	}
	fmt.Printf("   topology:  %s\n", patterns.ClassifyTopology(aggregate, zones))
	stage, conf := patterns.ClassifyAttackStage(aggregate, zones)
	fmt.Printf("   attack:    %s (%.2f)\n", stage, conf)

	if *exportPath != "" && busiest != nil {
		m := moduleFromMatrix(busiest, net, zones, s.Name())
		data, err := core.EncodeModule(m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*exportPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nexported busiest window as %s\n", *exportPath)
	}
	return nil
}

// listCatalog prints every registered scenario with its shape and
// description.
func listCatalog() error {
	fmt.Println("scenario catalog:")
	for _, s := range netsim.Scenarios() {
		fmt.Printf("  %-12s %s\n", s.Name(), s.Description())
		fmt.Printf("  %-12s └ shape: %s\n", "", s.Shape())
	}
	return nil
}

// moduleFromMatrix wraps a captured traffic matrix as a learning
// module (no question; an educator adds one in a text editor).
func moduleFromMatrix(m *matrix.Dense, net *netsim.Network, zones patterns.Zones, scenario string) *core.Module {
	clamped := m.Clone()
	clamped.Apply(func(v int) int {
		if v > core.MaxDisplayPackets {
			return core.MaxDisplayPackets
		}
		return v
	})
	name := scenario
	if name != "" {
		name = strings.ToUpper(name[:1]) + name[1:]
	}
	return &core.Module{
		Name:                "Captured " + name + " Traffic",
		Size:                core.FormatSize(m.Rows()),
		Author:              "twsim",
		AxisLabels:          net.Labels(),
		TrafficMatrix:       clamped.ToRows(),
		TrafficMatrixColors: zones.ColorMatrix().ToRows(),
		HasQuestion:         false,
	}
}
