package main

import (
	"encoding/json"
	"errors"
	"fmt"

	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"repro/internal/api"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// timingLine matches the two wall-clock report lines whose contents
// vary run to run; goldens store them with the numbers blanked.
var (
	generatedLine = regexp.MustCompile(`^generated in .* events/sec, workers=(\d+)\)$`)
	sparseLine    = regexp.MustCompile(`^(\s*sparse timings:) .*$`)
)

// normalize blanks the nondeterministic (timing) parts of twsim
// output so the rest can be compared byte for byte.
func normalize(out string) string {
	lines := strings.Split(out, "\n")
	for i, line := range lines {
		if m := generatedLine.FindStringSubmatch(line); m != nil {
			lines[i] = "generated in DUR (RATE events/sec, workers=" + m[1] + ")"
			continue
		}
		if m := sparseLine.FindStringSubmatch(line); m != nil {
			lines[i] = m[1] + " aggregate DUR, profile+classify DUR"
		}
	}
	return strings.Join(lines, "\n")
}

// checkGolden compares normalized output against the named golden
// file, rewriting it under -update.
func checkGolden(t *testing.T, name, out string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	got := normalize(out)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"background", "scan", "attack", "ddos", "worm", "exfil", "flashcrowd", "beacon"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing scenario %q", name)
		}
	}
	checkGolden(t, "list.golden", out)
}

// TestRunScanDeterministic drives a full small generation run on one
// worker and pins the complete (timing-normalized) output: catalog
// metadata, per-window readings, and the sparse CSR aggregate block.
func TestRunScanDeterministic(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-scenario", "scan", "-seed", "1", "-duration", "4", "-window", "2",
		"-workers", "1", "-plain", "-norender",
	}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aggregate readings (sparse CSR path)") {
		t.Error("missing sparse aggregate block")
	}
	if !strings.Contains(out, "sparse timings: aggregate") {
		t.Error("missing sparse-path timing report")
	}
	checkGolden(t, "scan.golden", out)
}

// TestRunSameOutputAnyWorkers pins the CLI-level determinism claim:
// identical (normalized) output on 1 worker and 4 workers.
func TestRunSameOutputAnyWorkers(t *testing.T) {
	outs := make([]string, 2)
	for i, workers := range []string{"1", "4"} {
		var buf bytes.Buffer
		args := []string{
			"-scenario", "ddos", "-seed", "7", "-duration", "8", "-window", "4",
			"-workers", workers, "-plain", "-norender", "-scale", "3",
		}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		out := normalize(buf.String())
		// The workers count itself is expected to differ.
		out = strings.ReplaceAll(out, "workers="+workers, "workers=N")
		outs[i] = out
	}
	if outs[0] != outs[1] {
		t.Error("twsim output differs between 1 and 4 workers")
	}
}

// TestRunSpecComposed pins the acceptance flow: a composed spec runs
// end to end on the sparse CSR path, prints the merged ground-truth
// schedule, and the mixture classifier names the component shapes.
func TestRunSpecComposed(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-spec", "overlay(background, sequence(scan, ddos))",
		"-seed", "42", "-workers", "1", "-plain", "-norender",
	}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ground truth schedule:", // merged phases survive composition
		"command and control",    // … including the DDoS components
		"mixture:",               // the disentangle reading
		"composed of: background + scan + ddos",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("composed run output missing %q", want)
		}
	}
	mixLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mixture:") {
			mixLine = line
		}
	}
	for _, shape := range []string{"background", "scan", "ddos"} {
		if !strings.Contains(mixLine, shape) {
			t.Errorf("mixture reading %q missing component %q", mixLine, shape)
		}
	}
	checkGolden(t, "spec_composed.golden", out)
}

// TestRunSpecFromFile: -spec also accepts a file holding the
// expression.
func TestRunSpecFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.spec")
	if err := os.WriteFile(path, []byte("overlay(background, sequence(scan, ddos))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var inline, fromFile bytes.Buffer
	base := []string{"-seed", "42", "-workers", "1", "-plain", "-norender"}
	if err := run(context.Background(), append([]string{"-spec", "overlay(background, sequence(scan, ddos))"}, base...), &inline); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append([]string{"-spec", path}, base...), &fromFile); err != nil {
		t.Fatal(err)
	}
	if normalize(inline.String()) != normalize(fromFile.String()) {
		t.Error("file spec output differs from inline spec output")
	}
}

// TestRunSpecSameOutputAnyWorkers extends the CLI determinism pin to
// composed scenarios.
func TestRunSpecSameOutputAnyWorkers(t *testing.T) {
	outs := make([]string, 2)
	for i, workers := range []string{"1", "4"} {
		var buf bytes.Buffer
		args := []string{
			"-spec", "sequence(scan@4s, amplify(ddos, 2))", "-seed", "3",
			"-duration", "12", "-window", "4", "-workers", workers, "-plain", "-norender",
		}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		out := normalize(buf.String())
		out = strings.ReplaceAll(out, "workers="+workers, "workers=N")
		outs[i] = out
	}
	if outs[0] != outs[1] {
		t.Error("composed twsim output differs between 1 and 4 workers")
	}
}

// TestRunUnknownScenarioListsCatalog pins the error path: an unknown
// -scenario must fail (main exits 1) with the available catalog names
// in the message.
func TestRunUnknownScenarioListsCatalog(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-scenario", "nope"}, &buf)
	if err == nil {
		t.Fatal("unknown scenario did not error")
	}
	for _, name := range []string{"background", "scan", "attack", "ddos", "worm", "exfil", "flashcrowd", "beacon"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q missing catalog name %q", err, name)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("error path wrote %q to stdout; the message belongs on stderr", buf.String())
	}
	checkGolden(t, "unknown_scenario.golden", err.Error())
}

func TestRunErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown scenario", []string{"-scenario", "nope"}},
		{"broken spec", []string{"-spec", "overlay(background"}},
		{"unknown spec name", []string{"-spec", "overlay(background, nope)"}},
		{"bad duration", []string{"-duration", "-1"}},
		{"bad rate", []string{"-rate", "0", "-scenario", "background"}},
		{"bad scale", []string{"-scale", "0"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), tc.args, &buf); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(buf.String(), "Usage of twsim") {
		t.Error("-h did not print usage")
	}
}

func TestRunExportWritesModule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "module.json")
	var buf bytes.Buffer
	args := []string{
		"-scenario", "ddos", "-seed", "2", "-duration", "4", "-window", "2",
		"-workers", "1", "-plain", "-norender", "-export", path,
	}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("export file not written: %v", err)
	}
	if !strings.Contains(string(data), "Captured Ddos Traffic") {
		t.Error("exported module missing expected name")
	}
}

// TestRunJSONGolden pins the -json output: the api wire form of a
// deterministic run, with the (nondeterministic) timing fields
// zeroed before comparison.
func TestRunJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-json", "-scenario", "scan", "-seed", "1", "-duration", "4", "-window", "2",
		"-workers", "1", "-plain",
	}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	var res api.GenerateResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"aggregate"`) || !strings.Contains(buf.String(), `"timings"`) ||
		!strings.Contains(buf.String(), `"mixture"`) {
		t.Error("-json output missing the aggregate block fields")
	}
	if res.Version != api.Version || res.Spec != "scan" || res.CacheHit {
		t.Errorf("result header = %+v", res)
	}
	res.Timings = api.Timings{}
	normalized, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scan_json.golden", string(normalized))
}

// TestRunJSONMatchesTextRun: the JSON and text views describe the
// same run — event and packet counts agree.
func TestRunJSONMatchesTextRun(t *testing.T) {
	base := []string{"-scenario", "scan", "-seed", "1", "-duration", "4", "-window", "2", "-workers", "1", "-plain"}
	var jsonBuf, textBuf bytes.Buffer
	if err := run(context.Background(), append([]string{"-json"}, base...), &jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append([]string{"-norender"}, base...), &textBuf); err != nil {
		t.Fatal(err)
	}
	var res api.GenerateResult
	if err := json.Unmarshal(jsonBuf.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("scenario scan on %d hosts: %d events, %d packets", res.Hosts, res.Events, res.Packets)
	if !strings.Contains(textBuf.String(), want) {
		t.Errorf("text view does not open with %q", want)
	}
}

// TestRunCancelledContext: the CLI's request context (Ctrl-C in
// main) aborts the run.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, []string{"-scenario", "scan", "-plain", "-norender"}, &buf)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestRunExportSkipsEmptyRun: a run whose windows hold no packets
// must not export an all-zero module.
func TestRunExportSkipsEmptyRun(t *testing.T) {
	res := &api.GenerateResult{Windows: []api.WindowResult{
		{Index: 0, Packets: 0}, {Index: 1, Packets: 0},
	}}
	if w := busiestWindow(res); w != nil {
		t.Errorf("busiestWindow over empty windows = %+v, want nil", w)
	}
	res.Windows[1].Packets = 3
	if w := busiestWindow(res); w == nil || w.Index != 1 {
		t.Errorf("busiestWindow = %+v, want window 1", w)
	}
}

// TestRunStreamTextMatchesBatchWindows: the stream mode's per-window
// text is identical to the batch run's, with the header and footer
// being the only differences — the two modes share printWindow.
func TestRunStreamTextMatchesBatchWindows(t *testing.T) {
	args := []string{"-scenario", "scan", "-seed", "1", "-duration", "8", "-window", "2", "-workers", "2", "-plain"}
	var batch, stream bytes.Buffer
	if err := run(context.Background(), args, &batch); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append([]string{"-stream"}, args...), &stream); err != nil {
		t.Fatal(err)
	}

	windowsOf := func(out string) string {
		lines := strings.Split(out, "\n")
		var kept []string
		keeping := false
		for _, line := range lines {
			if strings.HasPrefix(line, "── window") {
				keeping = true
			}
			if strings.HasPrefix(line, "── aggregate") || strings.HasPrefix(line, "── stream complete") {
				keeping = false
			}
			if keeping {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	bw, sw := windowsOf(batch.String()), windowsOf(stream.String())
	if bw == "" {
		t.Fatal("batch output has no window sections")
	}
	if bw != sw {
		t.Errorf("stream windows differ from batch windows:\n--- batch ---\n%s\n--- stream ---\n%s", bw, sw)
	}
	if !strings.Contains(stream.String(), "streaming 4 windows of 2s") {
		t.Errorf("stream header missing: %q", stream.String())
	}
	if !strings.Contains(stream.String(), "── stream complete") {
		t.Error("stream summary footer missing")
	}
}

// TestRunStreamJSONEmitsFrames: -stream -json relays the NDJSON
// frame stream — decodable, meta first, windows in order, summary
// last.
func TestRunStreamJSONEmitsFrames(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-stream", "-json", "-scenario", "ddos", "-seed", "1", "-duration", "20", "-window", "5", "-plain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	dec := api.NewFrameDecoder(&out)
	var types []string
	next := 0
	for {
		f, derr := dec.Next()
		if derr != nil {
			break
		}
		types = append(types, f.Type)
		if f.Type == api.FrameWindow {
			if f.Window.Index != next {
				t.Fatalf("window %d out of order (want %d)", f.Window.Index, next)
			}
			next++
		}
	}
	if len(types) != 6 || types[0] != api.FrameMeta || types[len(types)-1] != api.FrameSummary {
		t.Fatalf("frame sequence = %v, want meta, 4 windows, summary", types)
	}
}

// TestRunStreamExportRejected: -export needs the whole result, so
// combining it with -stream is an explicit error, not silence.
func TestRunStreamExportRejected(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mod.json")
	err := run(context.Background(), []string{"-stream", "-export", out, "-duration", "4"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-export") {
		t.Fatalf("err = %v, want an -export/-stream conflict", err)
	}
	if _, serr := os.Stat(out); !errors.Is(serr, os.ErrNotExist) {
		t.Error("rejected run still wrote the export file")
	}
}

// TestRunStreamCancelledContext: a cancelled context aborts the
// stream with the context's error, like the batch path.
func TestRunStreamCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-stream", "-scenario", "background", "-duration", "3600", "-rate", "2", "-norender"}, &bytes.Buffer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
