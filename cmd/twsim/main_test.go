package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// timingLine matches the two wall-clock report lines whose contents
// vary run to run; goldens store them with the numbers blanked.
var (
	generatedLine = regexp.MustCompile(`^generated in .* events/sec, workers=(\d+)\)$`)
	sparseLine    = regexp.MustCompile(`^(\s*sparse timings:) .*$`)
)

// normalize blanks the nondeterministic (timing) parts of twsim
// output so the rest can be compared byte for byte.
func normalize(out string) string {
	lines := strings.Split(out, "\n")
	for i, line := range lines {
		if m := generatedLine.FindStringSubmatch(line); m != nil {
			lines[i] = "generated in DUR (RATE events/sec, workers=" + m[1] + ")"
			continue
		}
		if m := sparseLine.FindStringSubmatch(line); m != nil {
			lines[i] = m[1] + " aggregate DUR, profile+classify DUR"
		}
	}
	return strings.Join(lines, "\n")
}

// checkGolden compares normalized output against the named golden
// file, rewriting it under -update.
func checkGolden(t *testing.T, name, out string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	got := normalize(out)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"background", "scan", "attack", "ddos", "worm", "exfil", "flashcrowd", "beacon"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing scenario %q", name)
		}
	}
	checkGolden(t, "list.golden", out)
}

// TestRunScanDeterministic drives a full small generation run on one
// worker and pins the complete (timing-normalized) output: catalog
// metadata, per-window readings, and the sparse CSR aggregate block.
func TestRunScanDeterministic(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-scenario", "scan", "-seed", "1", "-duration", "4", "-window", "2",
		"-workers", "1", "-plain", "-norender",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aggregate readings (sparse CSR path)") {
		t.Error("missing sparse aggregate block")
	}
	if !strings.Contains(out, "sparse timings: aggregate") {
		t.Error("missing sparse-path timing report")
	}
	checkGolden(t, "scan.golden", out)
}

// TestRunSameOutputAnyWorkers pins the CLI-level determinism claim:
// identical (normalized) output on 1 worker and 4 workers.
func TestRunSameOutputAnyWorkers(t *testing.T) {
	outs := make([]string, 2)
	for i, workers := range []string{"1", "4"} {
		var buf bytes.Buffer
		args := []string{
			"-scenario", "ddos", "-seed", "7", "-duration", "8", "-window", "4",
			"-workers", workers, "-plain", "-norender", "-scale", "3",
		}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		out := normalize(buf.String())
		// The workers count itself is expected to differ.
		out = strings.ReplaceAll(out, "workers="+workers, "workers=N")
		outs[i] = out
	}
	if outs[0] != outs[1] {
		t.Error("twsim output differs between 1 and 4 workers")
	}
}

func TestRunErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown scenario", []string{"-scenario", "nope"}},
		{"bad duration", []string{"-duration", "-1"}},
		{"bad rate", []string{"-rate", "0", "-scenario", "background"}},
		{"bad scale", []string{"-scale", "0"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	} {
		var buf bytes.Buffer
		if err := run(tc.args, &buf); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(buf.String(), "Usage of twsim") {
		t.Error("-h did not print usage")
	}
}

func TestRunExportWritesModule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "module.json")
	var buf bytes.Buffer
	args := []string{
		"-scenario", "ddos", "-seed", "2", "-duration", "4", "-window", "2",
		"-workers", "1", "-plain", "-norender", "-export", path,
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("export file not written: %v", err)
	}
	if !strings.Contains(string(data), "Captured Ddos Traffic") {
		t.Error("exported module missing expected name")
	}
}
