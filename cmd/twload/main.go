// Command twload drives a running twserve with a concurrent mixed
// classroom workload and reports per-class latency percentiles,
// throughput, and error rate — the measurement half of the sharded
// service core.
//
//	twload -addr http://localhost:8080 -duration 10s -concurrency 8 -json out.json
//
// The workload models a classroom session against one shared server:
//
//	warm     50%  a small set of fixed spec/seed runs, repeated — the
//	              hot path; after the first computation every request
//	              is a cache hit on the spec's worker
//	cold     20%  unique-seed runs that can never hit the cache — the
//	              compute-bound floor
//	composed 15%  fixed composition-spec runs (warm after first touch,
//	              but parse + route through the full spec grammar)
//	module   10%  figure-pattern module renders
//	stream    5%  streaming generates, every NDJSON frame read
//
// With -players N > 0 a sixth class joins the mix: 25% of requests
// become player flows (enroll → start attempt → submit → read
// progress) spread over N synthetic accounts load-p0 … load-p{N-1},
// with the remaining 75% split by the ratios above. A 429 from the
// server's per-player rate limiter is tallied separately (the
// rate_limited column), not as an error — the smoke harness asserts
// the limiter fires under aggressive -player-rps without failing the
// run.
//
// Each request class is reported separately (see
// internal/loadreport), so warm-vs-cold p50 is directly visible; the
// harness's benchguard -load mode asserts the invariants that hold on
// any machine. Before the run twload asks GET /v1/stats for the
// server's worker count and records it in the summary, making a
// summary file self-describing when comparing -workers 1 vs 4.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/loadreport"
	"repro/internal/player"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "twserve base URL")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 8, "concurrent client goroutines")
	seed := flag.Int64("seed", 1, "workload shuffle seed")
	players := flag.Int("players", 0, "synthetic player accounts to drive (0 disables the player class)")
	jsonOut := flag.String("json", "", "write the summary as JSON to this path (\"-\" for stdout)")
	flag.Parse()

	sum, err := run(context.Background(), config{
		addr:        *addr,
		duration:    *duration,
		concurrency: *concurrency,
		seed:        *seed,
		players:     *players,
	})
	if err != nil {
		log.Fatalf("twload: %v", err)
	}
	fmt.Print(sum.String())
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			log.Fatalf("twload: encode summary: %v", err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatalf("twload: write summary: %v", err)
		}
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}

type config struct {
	addr        string
	duration    time.Duration
	concurrency int
	seed        int64
	players     int
}

// Class mix in cumulative percent: rng.Intn(100) < boundary picks the
// class. Warm dominates because a classroom repeats the lesson's
// specs; cold keeps the compute path honest under the same load.
const (
	pctWarm     = 50
	pctCold     = 70 // +20
	pctComposed = 85 // +15
	pctModule   = 95 // +10
	// remainder: stream (5)

	// pctPlayer is the player-flow share when -players is on; the
	// classes above keep their relative ratios inside the remainder.
	pctPlayer = 25
)

// loadShape is the parameter block every generate-class request
// shares: big enough that a cold computation is compute-bound
// (tens of ms — a cache hit is ~1ms, so the warm/cold p50 gap
// isolates caching, not workload size), small enough that a 10s run
// completes hundreds of them.
func loadShape(spec string, seed int64) api.GenerateRequest {
	return api.GenerateRequest{
		Spec: spec, Seed: seed, Hosts: 200,
		Duration: 60, Scale: 8, Window: 10, Workers: 1,
	}
}

// coldSpec is the composition every unique-seed cold request runs.
const coldSpec = "overlay(background, sequence(scan, ddos))"

// warmSet is the fixed lesson: the specs a classroom repeats, in the
// same shape as the cold class. After each first computation every
// further request is a cache hit on the spec's worker.
var warmSet = []api.GenerateRequest{
	loadShape("scan", 11),
	loadShape("ddos", 12),
	loadShape("background", 13),
	loadShape(coldSpec, 14),
}

// composedSet exercises the spec grammar and the router's canonical
// keying (both spellings of the first spec are one cache line).
var composedSet = []string{
	"overlay(background, sequence(scan, ddos))",
	"overlay( background ,sequence( scan,ddos ) )",
	"amplify(sequence(beacon@5s, exfil), 2)",
}

// moduleSet is a rotation of figure-catalog patterns.
var moduleSet = []string{
	"fig6a-isolated-links", "fig6b-single-links",
	"fig6c-internal-supernode", "fig9c-ddos-attack",
}

// run drives the configured load and returns the summary.
func run(ctx context.Context, cfg config) (loadreport.Summary, error) {
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}
	client := &http.Client{}
	workers, err := serverWorkers(ctx, client, cfg.addr)
	if err != nil {
		return loadreport.Summary{}, fmt.Errorf("probe %s: %w", cfg.addr, err)
	}

	collector := loadreport.NewCollector()
	var coldSeq atomic.Int64
	deadline := time.Now().Add(cfg.duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(g)))
			for time.Now().Before(deadline) {
				class, call := pick(rng, &coldSeq, cfg.players)
				t0 := time.Now()
				cache, err := call(runCtx, client, cfg.addr)
				if runCtx.Err() != nil && err != nil {
					// The deadline tripped mid-request; an aborted tail
					// request is not a server error.
					break
				}
				if errors.Is(err, errRateLimited) {
					// A 429 is the limiter doing its job: tally it,
					// keep the round trip as a latency sample.
					collector.RecordRateLimited(class)
					err = nil
				}
				collector.Record(class, time.Since(t0), err)
				if err == nil && cache != "" {
					collector.RecordCache(class, cache == "hit")
				}
			}
		}(g)
	}
	wg.Wait()

	sum := collector.Summarize(time.Since(start))
	sum.Addr = cfg.addr
	sum.Workers = workers
	sum.Concurrency = cfg.concurrency
	return sum, nil
}

// pick selects a request class and returns its caller.
func pick(rng *rand.Rand, coldSeq *atomic.Int64, players int) (string, callFunc) {
	if players > 0 && rng.Intn(100) < pctPlayer {
		return "player", playerCall(fmt.Sprintf("load-p%d", rng.Intn(players)))
	}
	switch n := rng.Intn(100); {
	case n < pctWarm:
		req := warmSet[rng.Intn(len(warmSet))]
		return "warm", generateCall(req)
	case n < pctCold:
		// Seeds from a shared sequence, offset far past every fixed
		// seed: no cold request ever repeats, so none can hit.
		return "cold", generateCall(loadShape(coldSpec, 1_000_000+coldSeq.Add(1)))
	case n < pctComposed:
		return "composed", generateCall(loadShape(composedSet[rng.Intn(len(composedSet))], 21))
	case n < pctModule:
		pattern := moduleSet[rng.Intn(len(moduleSet))]
		return "module", moduleCall(pattern)
	default:
		// Streams bypass the result cache, so every stream recomputes;
		// a lighter run keeps the 5% stream share from dominating.
		return "stream", streamCall(api.GenerateRequest{
			Spec: "ddos", Seed: 31, Hosts: 100, Duration: 30, Window: 10, Workers: 1})
	}
}

// serverWorkers asks /v1/stats how many workers the target fronts —
// and doubles as the reachability probe before load starts.
func serverWorkers(ctx context.Context, client *http.Client, addr string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var rep api.StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return 0, err
	}
	return len(rep.Workers), nil
}

func postJSON(ctx context.Context, client *http.Client, url string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

// callFunc issues one request and reports the response's X-Cache
// marker ("hit"/"miss", empty for routes without one) alongside any
// failure.
type callFunc func(context.Context, *http.Client, string) (string, error)

// generateCall posts a batch generate and drains the body (the
// response must be fully received for the latency to mean anything).
func generateCall(greq api.GenerateRequest) callFunc {
	return func(ctx context.Context, client *http.Client, addr string) (string, error) {
		resp, err := postJSON(ctx, client, addr+"/v1/generate", greq)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("generate %s: status %d", greq.Spec, resp.StatusCode)
		}
		return resp.Header.Get("X-Cache"), nil
	}
}

func moduleCall(pattern string) callFunc {
	return func(ctx context.Context, client *http.Client, addr string) (string, error) {
		resp, err := postJSON(ctx, client, addr+"/v1/module", api.ModuleRequest{Pattern: pattern})
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("module %s: status %d", pattern, resp.StatusCode)
		}
		return "", nil
	}
}

// errRateLimited marks a flow the server cut short with a 429 — the
// run loop tallies it per class instead of counting an error.
var errRateLimited = errors.New("rate limited")

// playerPattern is the module every player flow quizzes on: a
// figure-catalog pattern render, so the flow never pays a scenario
// generation and its latency measures the player layer itself.
const playerPattern = "fig9c-ddos-attack"

// playerStep consumes one response of the player flow: 200 decodes
// into out (when non-nil), 429 reports errRateLimited, statuses in
// tolerate pass silently, anything else is an error.
func playerStep(resp *http.Response, err error, out any, tolerate ...int) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return errRateLimited
	case resp.StatusCode == http.StatusOK:
		if out != nil {
			return json.Unmarshal(body, out)
		}
		return nil
	}
	for _, s := range tolerate {
		if resp.StatusCode == s {
			return nil
		}
	}
	return fmt.Errorf("player flow: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// playerCall runs one player's full flow — enroll, start an attempt,
// submit an answer, read progress — as a single latency sample. A 429
// at any step ends the flow as rate-limited (the later steps would
// only re-trip the same player's bucket).
func playerCall(id string) callFunc {
	return func(ctx context.Context, client *http.Client, addr string) (string, error) {
		// Enroll; 409 means an earlier iteration already did.
		resp, err := postJSON(ctx, client, addr+"/v1/player",
			api.PlayerCreateRequest{ID: id, Name: "load " + id})
		if err := playerStep(resp, err, nil, http.StatusConflict); err != nil {
			return "", err
		}

		var att api.AttemptResult
		resp, err = postJSON(ctx, client, addr+"/v1/player/"+id+"/attempt",
			api.AttemptStartRequest{ModuleRef: player.ModuleRef{Pattern: playerPattern}})
		if err := playerStep(resp, err, &att); err != nil {
			return "", err
		}

		resp, err = postJSON(ctx, client,
			fmt.Sprintf("%s/v1/player/%s/attempt/%d", addr, id, att.Attempt.Attempt),
			api.AttemptSubmitRequest{Answer: 0})
		if err := playerStep(resp, err, nil); err != nil {
			return "", err
		}

		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/player/"+id+"/progress", nil)
		if err != nil {
			return "", err
		}
		resp, err = client.Do(req)
		if err := playerStep(resp, err, nil); err != nil {
			return "", err
		}
		return "", nil
	}
}

// streamCall posts a streaming generate and reads every NDJSON frame;
// the request only counts as successful if the stream closes with a
// summary frame (an error frame or a truncated stream is a failure).
func streamCall(greq api.GenerateRequest) callFunc {
	return func(ctx context.Context, client *http.Client, addr string) (string, error) {
		resp, err := postJSON(ctx, client, addr+"/v1/generate/stream", greq)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return "", fmt.Errorf("stream %s: status %d", greq.Spec, resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		last := ""
		for sc.Scan() {
			var f api.StreamFrame
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				return "", fmt.Errorf("stream %s: bad frame: %w", greq.Spec, err)
			}
			if f.Type == api.FrameError {
				return "", fmt.Errorf("stream %s: server error frame: %s", greq.Spec, f.Error)
			}
			last = f.Type
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		if last != api.FrameSummary {
			return "", fmt.Errorf("stream %s: truncated (last frame %q)", greq.Spec, last)
		}
		return "", nil
	}
}
