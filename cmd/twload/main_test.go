package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/router"
	"repro/internal/serve"
)

// testServer serves the real twserve route table (internal/serve)
// over a worker pool — the exact handler stack twload drives in
// production, X-Cache markers included.
func testServer(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	core := api.Core(api.New())
	if workers > 1 {
		core = router.NewPool(workers)
	}
	srv := httptest.NewServer(serve.NewMux(core))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunMixedLoad: one run against a 4-worker fleet completes with
// zero errors, covers the dominant request classes, reports sane
// percentiles, and exhibits the invariant benchguard -load gates on:
// repeated specs are served from cache, so warm p50 sits below cold
// p50. Long enough (4s) that the 20% cold class is sampled even when
// the race detector slows every request several-fold.
func TestRunMixedLoad(t *testing.T) {
	srv := testServer(t, 4)
	sum, err := run(context.Background(), config{
		addr:        srv.URL,
		duration:    4 * time.Second,
		concurrency: 4,
		seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run saw %d errors:\n%s", sum.Errors, sum.String())
	}
	if sum.Requests == 0 || sum.Throughput <= 0 {
		t.Fatalf("no load delivered: %+v", sum)
	}
	if sum.Workers != 4 {
		t.Errorf("probed worker count = %d, want 4", sum.Workers)
	}
	if sum.Concurrency != 4 {
		t.Errorf("summary concurrency = %d", sum.Concurrency)
	}
	// The dominant classes must appear; stream at 5% may legitimately
	// miss the window.
	for _, class := range []string{"warm", "cold"} {
		st, ok := sum.Class(class)
		if !ok {
			t.Errorf("class %q missing from summary", class)
			continue
		}
		if st.P50Ms > st.P99Ms || st.MaxMs < st.P99Ms {
			t.Errorf("%s: inconsistent percentiles %+v", class, st)
		}
	}
	warm, okW := sum.Class("warm")
	cold, okC := sum.Class("cold")
	if okW && okC && warm.P50Ms >= cold.P50Ms {
		t.Errorf("warm p50 %.2fms not below cold p50 %.2fms — cache not visible in the load shape",
			warm.P50Ms, cold.P50Ms)
	}
	// Generate-class requests carry the X-Cache marker: warm repeats
	// are nearly all hits, cold unique seeds never hit.
	if okW {
		if warm.CacheLookups == 0 {
			t.Error("warm class recorded no cache lookups — X-Cache capture lost")
		} else if warm.HitRate() < 0.5 {
			t.Errorf("warm hit rate %.0f%% below 50%% — cache counters implausible", 100*warm.HitRate())
		}
	}
	if okC && cold.CacheHits != 0 {
		t.Errorf("cold class recorded %d cache hits; unique seeds can never hit", cold.CacheHits)
	}
}

// TestRunUnreachableTarget: a dead address fails fast with a probe
// error instead of reporting a zero-request "success".
func TestRunUnreachableTarget(t *testing.T) {
	_, err := run(context.Background(), config{
		addr:        "http://127.0.0.1:1",
		duration:    time.Second,
		concurrency: 1,
	})
	if err == nil {
		t.Fatal("run against an unreachable target returned no error")
	}
}
