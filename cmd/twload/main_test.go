package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/router"
)

// testServer is a thin shim over a worker pool exposing exactly the
// routes twload drives. (cmd packages cannot import each other, so
// the full twserve mux is not available here; the real end-to-end
// pairing is exercised by the CI load-smoke job.)
func testServer(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	core := api.Core(api.New())
	if workers > 1 {
		core = router.NewPool(workers)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(core.Stats())
	})
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		var req api.GenerateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := core.Generate(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("POST /v1/generate/stream", func(w http.ResponseWriter, r *http.Request) {
		var req api.GenerateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		err := core.GenerateStream(r.Context(), req, func(f api.StreamFrame) error {
			return api.EncodeFrame(w, f)
		})
		if err != nil {
			api.EncodeFrame(w, api.StreamFrame{Type: api.FrameError, Error: err.Error()})
		}
	})
	mux.HandleFunc("POST /v1/module", func(w http.ResponseWriter, r *http.Request) {
		var req api.ModuleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m, err := core.Module(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(m)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunMixedLoad: one run against a 4-worker fleet completes with
// zero errors, covers the dominant request classes, reports sane
// percentiles, and exhibits the invariant benchguard -load gates on:
// repeated specs are served from cache, so warm p50 sits below cold
// p50. Long enough (4s) that the 20% cold class is sampled even when
// the race detector slows every request several-fold.
func TestRunMixedLoad(t *testing.T) {
	srv := testServer(t, 4)
	sum, err := run(context.Background(), config{
		addr:        srv.URL,
		duration:    4 * time.Second,
		concurrency: 4,
		seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run saw %d errors:\n%s", sum.Errors, sum.String())
	}
	if sum.Requests == 0 || sum.Throughput <= 0 {
		t.Fatalf("no load delivered: %+v", sum)
	}
	if sum.Workers != 4 {
		t.Errorf("probed worker count = %d, want 4", sum.Workers)
	}
	if sum.Concurrency != 4 {
		t.Errorf("summary concurrency = %d", sum.Concurrency)
	}
	// The dominant classes must appear; stream at 5% may legitimately
	// miss the window.
	for _, class := range []string{"warm", "cold"} {
		st, ok := sum.Class(class)
		if !ok {
			t.Errorf("class %q missing from summary", class)
			continue
		}
		if st.P50Ms > st.P99Ms || st.MaxMs < st.P99Ms {
			t.Errorf("%s: inconsistent percentiles %+v", class, st)
		}
	}
	warm, okW := sum.Class("warm")
	cold, okC := sum.Class("cold")
	if okW && okC && warm.P50Ms >= cold.P50Ms {
		t.Errorf("warm p50 %.2fms not below cold p50 %.2fms — cache not visible in the load shape",
			warm.P50Ms, cold.P50Ms)
	}
}

// TestRunUnreachableTarget: a dead address fails fast with a probe
// error instead of reporting a zero-request "success".
func TestRunUnreachableTarget(t *testing.T) {
	_, err := run(context.Background(), config{
		addr:        "http://127.0.0.1:1",
		duration:    time.Second,
		concurrency: 1,
	})
	if err == nil {
		t.Fatal("run against an unreachable target returned no error")
	}
}
