// Package repro is a from-scratch Go reproduction of "Teaching
// Network Traffic Matrices in an Interactive Game Environment"
// (IPPS/IPDPSW 2024, arXiv:2404.14643): the Traffic Warehouse
// educational game, its extensible JSON learning-module format, and
// every substrate the paper's artifact depends on — a scene-tree
// engine, a GDScript interpreter, voxel assets with OBJ export, a
// terminal/PPM renderer, the module pattern library with
// classifiers, and a concurrent network scenario engine whose
// eight-scenario catalog generates deterministic traffic in
// parallel (internal/netsim). Every front-end reaches the pipeline
// through the versioned internal/api façade — context-aware typed
// requests with a canonical-spec result cache — served over HTTP by
// cmd/twserve.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// dependency graph, and EXPERIMENTS.md for the paper-versus-measured
// record. The root package holds the benchmark harness
// (bench_test.go) that regenerates every table and figure and
// records the scenario engine's throughput curve.
package repro
