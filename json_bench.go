package repro

import (
	"encoding/json"
	"io"
)

// newJSONDecoder exposes encoding/json's decoder to the strict-
// baseline ablation bench without importing it in the test file.
func newJSONDecoder(r io.Reader) *json.Decoder {
	return json.NewDecoder(r)
}
