// Quickstart: load a learning module, look at it in 2D and 3D, and
// answer its question — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/quiz"
	"repro/internal/render"
	"repro/internal/term"
)

// moduleJSON is a hand-written lesson file, exactly as an educator
// would type it (note the trailing commas — the paper's own listings
// have them, and the decoder accepts them).
const moduleJSON = `{
	"name": "Quickstart Lesson",
	"size": "6x6",
	"author": "Quickstart",
	"axis_labels": ["WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2",],
	"traffic_matrix": [
		[0, 0, 2, 1, 0, 0],
		[0, 0, 2, 0, 0, 0],
		[1, 1, 0, 0, 0, 0],
		[0, 0, 0, 0, 0, 0],
		[0, 0, 3, 0, 0, 1],
		[0, 0, 0, 0, 1, 0],
	],
	"traffic_matrix_colors": [
		[1, 1, 1, 0, 2, 2],
		[1, 1, 1, 0, 2, 2],
		[1, 1, 1, 0, 2, 2],
		[0, 0, 0, 0, 0, 0],
		[2, 2, 2, 0, 0, 0],
		[2, 2, 2, 0, 0, 0],
	],
	"has_question": true,
	"question": "How many packets did ADV1 send to SRV1?",
	"answers": ["1", "2", "3",],
	"correct_answer_element": 2,
}`

func main() {
	term.SetEnabled(false) // plain text for piping; drop for colors

	// 1. Parse and validate the module.
	module, err := core.ParseModule([]byte(moduleJSON))
	if err != nil {
		log.Fatal(err)
	}
	if issues := module.Validate(); !issues.OK() {
		log.Fatalf("module invalid:\n%s", issues.Errs())
	}
	fmt.Printf("loaded %q by %s (%s, %d packets)\n\n",
		module.Name, module.Author, module.Size, module.TotalPackets())

	// 2. The 2D spreadsheet view with the color overlay.
	fb, err := game.RenderStatic(module, false, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fb.Text())

	// 3. The 3D warehouse view, rotated one quarter turn (the E
	// key).
	fb3, err := game.RenderStatic(module, true, render.Rotation(1), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fb3.Text())

	// 4. Ask the question with shuffled answers and grade a reply.
	q, _ := module.Quiz()
	presented := quiz.Shuffle(q, rand.New(rand.NewSource(3)))
	fmt.Println(presented.Prompt)
	for i, opt := range presented.Options {
		fmt.Printf("  %d) %s\n", i+1, opt)
	}
	// Pretend the student picks the correct display position.
	correct, err := presented.Grade(presented.CorrectOption)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("student picks option %d → correct=%v\n", presented.CorrectOption+1, correct)
}
