// DDoS analysis: the analyst workflow the game trains students
// toward. Simulate a DDoS embedded in benign background traffic,
// aggregate the packet events into ten-second traffic matrices, and
// recover the attack's component timeline with the pattern
// classifier — reading the story the matrices tell.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	term.SetEnabled(false)

	net := netsim.StandardNetwork()
	rng := rand.New(rand.NewSource(2024))
	zones, err := net.Zones()
	if err != nil {
		log.Fatal(err)
	}
	roles, err := patterns.AssignDDoSRoles(zones)
	if err != nil {
		log.Fatal(err)
	}

	const duration = 40.0
	attack, phases, err := netsim.DDoSScenario(net, rng, duration)
	if err != nil {
		log.Fatal(err)
	}
	background, err := netsim.Background(net, rng, duration, 2)
	if err != nil {
		log.Fatal(err)
	}
	combined := append(attack, background...)
	combined.Sort()

	fmt.Printf("simulated %d events (%d packets): DDoS + benign background\n",
		len(combined), combined.TotalPackets())
	fmt.Println("ground truth phases:")
	for _, p := range phases {
		fmt.Printf("  [%4.0fs,%4.0fs) %s\n", p.Start, p.End, p.Component)
	}

	windows, err := combined.Windows(net, 10, duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanalyst reading, window by window:")
	recovered := 0
	for i, w := range windows {
		component, conf := patterns.ClassifyDDoS(w.Matrix, roles)
		truth := phases[i].Component
		ok := component == truth
		if ok {
			recovered++
		}
		fmt.Printf("  [%4.0fs,%4.0fs) %-20s (confidence %.2f, truth: %s) %s\n",
			w.Start, w.End, component, conf, truth, mark(ok))
	}
	fmt.Printf("recovered %d/%d phases despite background noise\n\n", recovered, len(windows))

	// Show the flood window as the student would see it in-game.
	floodWindow := windows[2]
	fb, err := render.Matrix2D(floodWindow.Matrix, render.Matrix2DOptions{
		Labels: net.Labels(),
		Colors: zones.ColorMatrix(),
		Title:  "The flood window, as a traffic matrix",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fb.Text())

	// And the headline numbers an analyst reports.
	in := floodWindow.Matrix.ColSums()
	victim, peak := 0, 0
	for i, v := range in {
		if v > peak {
			victim, peak = i, v
		}
	}
	fmt.Printf("victim: %s absorbed %d packets in 10s (%.0f%% of window traffic)\n",
		net.Labels()[victim], peak, 100*float64(peak)/float64(floodWindow.Matrix.Sum()))
}

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
