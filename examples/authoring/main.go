// Authoring: the educator workflow. Start from a template, build a
// custom module from the pattern catalog, add noise for difficulty,
// validate everything, pack a lesson zip, and reload it — the full
// life cycle of the paper's "easily editable JSON file" design.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/modules"
	"repro/internal/patterns"
)

func main() {
	dir, err := os.MkdirTemp("", "tw-authoring")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Start from the 10×10 template, exactly as the paper
	// instructs ("example files that can be duplicated and
	// modified").
	template := core.MustTemplate(10)
	template.Name = "My First Lesson"
	template.Author = "An Educator"

	// 2. Generate a module straight from the pattern catalog.
	entry, ok := patterns.Lookup("fig6d-external-supernode")
	if !ok {
		log.Fatal("catalog entry missing")
	}
	supernode, err := modules.FromEntry(entry)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build a challenge module: a DDoS attack hidden in
	// background noise (the paper's suggested harder exercise).
	rng := rand.New(rand.NewSource(11))
	attack, err := patterns.DDoS(patterns.StandardZones10, patterns.DDoSAttack, 2)
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := patterns.AddNoise(attack, rng, 8, 2)
	if err != nil {
		log.Fatal(err)
	}
	challenge := &core.Module{
		Name:                 "Find the Attack",
		Size:                 core.FormatSize(10),
		Author:               "An Educator",
		AxisLabels:           append([]string(nil), patterns.StandardLabels10...),
		TrafficMatrix:        noisy.ToRows(),
		TrafficMatrixColors:  patterns.StandardZones10.ColorMatrix().ToRows(),
		HasQuestion:          true,
		Question:             "Which host is under attack?",
		Answers:              []string{"SRV1", "EXT1", "ADV1"},
		CorrectAnswerElement: 0,
	}

	// 4. Validate each module and report findings the way twmodule
	// does.
	lesson := &core.Lesson{Name: "authored", Modules: []*core.Module{template, supernode, challenge}}
	if issues := lesson.Validate(); len(issues) > 0 {
		fmt.Println("validation findings:")
		for _, issue := range issues {
			fmt.Println("  " + issue.String())
		}
		if !issues.OK() {
			log.Fatal("lesson has errors")
		}
	}

	// 5. Pack the lesson zip and reload it; the round-trip must be
	// lossless.
	zipPath := filepath.Join(dir, "authored.zip")
	var buf bytes.Buffer
	if err := lesson.WriteZip(&buf); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(zipPath, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.LoadZipFile(zipPath)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range reloaded.Modules {
		if !m.Equal(lesson.Modules[i]) {
			log.Fatalf("module %d changed across the zip round-trip", i)
		}
	}
	fmt.Printf("packed and reloaded %d modules losslessly via %s\n", reloaded.Len(), filepath.Base(zipPath))

	// 6. Show that the hidden attack is still detectable — the
	// lesson works.
	mat, err := challenge.Matrix()
	if err != nil {
		log.Fatal(err)
	}
	hubs := matrix.Supernodes(mat, patterns.SupernodeFanThreshold)
	if len(hubs) == 0 {
		log.Fatal("challenge module lost its attack signal")
	}
	fmt.Printf("challenge check: busiest hub is %s (fan %d, direction %s) — the victim\n",
		challenge.AxisLabels[hubs[0].Index], hubs[0].Fan, hubs[0].Direction)
}
