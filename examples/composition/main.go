// Composition walkthrough: the scenario algebra that takes the
// catalog from eight fixed scripts to an unbounded exercise space.
// Build a mixture three ways — combinators in Go, a declarative spec
// expression, and a runtime catalog registration — then disentangle
// it with the mixture classifier and verify that relabeling hosts is
// exactly a matrix permutation.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/patterns"
)

func main() {
	net := netsim.StandardNetwork()
	zones, err := net.Zones()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Combinators in Go: background chatter overlaid with a scan
	// confined to the first ten seconds, then a DDoS.
	background, _ := netsim.LookupScenario("background")
	scan, _ := netsim.LookupScenario("scan")
	ddos, _ := netsim.LookupScenario("ddos")
	composed := netsim.Overlay(
		background,
		netsim.SequenceSteps(
			netsim.SeqStep{Scenario: scan, Duration: 10},
			netsim.SeqStep{Scenario: ddos},
		),
	)
	fmt.Println("composed scenario:", composed.Name())

	// 2. The same mixture from its declarative spec — a composed
	// scenario's name IS a parseable spec.
	fromSpec, err := netsim.ParseSpec(composed.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spec round trip:  ", fromSpec.Name())

	// The merged ground-truth schedule survives composition.
	p := netsim.Params{Duration: 40}
	if sched, ok := composed.(netsim.Scheduler); ok {
		fmt.Println("ground truth schedule:")
		for _, ph := range sched.Schedule(p) {
			fmt.Printf("  [%5.1fs,%5.1fs) %s\n", ph.Start, ph.End, ph.Label)
		}
	}

	// Generate on the sparse path and disentangle the layers.
	csr, stats, err := netsim.GenerateCSR(composed, net, 42, 0, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %d events, %d packets, nnz=%d\n",
		stats.Events, stats.Packets, csr.NNZ())
	fmt.Println("mixture reading:")
	for _, c := range patterns.ClassifyMixtureOf(csr, zones) {
		fmt.Printf("  %-12s %.2f\n", c.Label, c.Score)
	}

	// 3. Relabeling hosts at the event level equals the parallel
	// symmetric permutation of the matrix — the algebraic fact that
	// makes relabeled variants of one scenario distinct exercises.
	mapping := map[string]string{"WS1": "WS3", "WS3": "WS1"}
	relabeled, _, err := netsim.GenerateCSR(netsim.Relabel(composed, mapping), net, 42, 0, p)
	if err != nil {
		log.Fatal(err)
	}
	perm, err := netsim.PermutationOf(net, mapping)
	if err != nil {
		log.Fatal(err)
	}
	permuted, err := matrix.PermuteCSR(csr, perm, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRelabel == PermuteCSR: %v\n", reflect.DeepEqual(relabeled, permuted))

	// 4. Register the mixture into the catalog at runtime; later
	// specs reference it by name like any built-in.
	if _, err := netsim.RegisterSpec("layered-ddos", "scan then DDoS under chatter", composed.Name()); err != nil {
		log.Fatal(err)
	}
	nested, err := netsim.ParseSpec("amplify(layered-ddos, 2)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered and reused:", nested.Name())
}
