// Classroom: run the full built-in curriculum for a cohort of
// simulated students, then print the per-student score reports and
// the educator's item analysis — the "core unit as part of a formal
// course" configuration the paper describes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/game"
	"repro/internal/modules"
	"repro/internal/quiz"
)

// student models one simulated learner: their name and the
// probability they answer a question correctly (when they miss,
// they pick a random wrong option).
type student struct {
	name  string
	skill float64
}

func main() {
	cohortStudents := []student{
		{name: "alice", skill: 0.95},
		{name: "bob", skill: 0.75},
		{name: "carol", skill: 0.55},
		{name: "dave", skill: 0.35},
	}

	lesson, err := modules.Curriculum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("curriculum: %d modules across %d lessons\n\n", lesson.Len(), len(modules.LessonNames))

	cohort := quiz.NewCohort()
	for i, s := range cohortStudents {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		g, err := game.New(lesson, s.name, rng)
		if err != nil {
			log.Fatal(err)
		}
		playStudent(g, rng, s.skill)
		fmt.Println(g.Session().Report())
		cohort.AddSession(g.Session())
	}

	fmt.Println(cohort.Report())
}

// playStudent drives the game for one student: fill every level
// (students always finish placement; skill applies to questions),
// then answer with the student's accuracy.
func playStudent(g *game.Game, rng *rand.Rand, skill float64) {
	for !g.Done() {
		switch g.Phase() {
		case game.PhasePlaying:
			// Skip any training steps, then fill and submit.
			g.Update(game.ActionFillAll)
			for g.Phase() == game.PhasePlaying {
				g.Update(game.ActionNext)
			}
		case game.PhaseQuestion:
			q, _ := g.Question()
			choice := q.CorrectOption
			if rng.Float64() > skill {
				// Pick a wrong option uniformly.
				choice = rng.Intn(len(q.Options))
				for choice == q.CorrectOption {
					choice = rng.Intn(len(q.Options))
				}
			}
			g.Update([]game.Action{game.ActionAnswer1, game.ActionAnswer2, game.ActionAnswer3}[choice])
		case game.PhaseModuleDone:
			g.Update(game.ActionNext)
		}
	}
}
