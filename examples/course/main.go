// Course: the paper's future-work items working together. An
// educator builds a hierarchical course (units gated by
// prerequisites), obfuscates the quiz answers so students reading
// the JSON can't cheat, and a student progresses through the units
// with per-session records saved for later cohort analysis.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/game"
	"repro/internal/modules"
	"repro/internal/quiz"
)

// manifest is what the educator writes (trailing commas and
// comments, as usual).
const manifest = `{
	// basics first, threats gated behind them
	"name": "Network Defense Bootcamp",
	"author": "An Educator",
	"units": [
		{"name": "Basics", "description": "What a traffic matrix is",
		 "lessons": ["training", "topologies",],},
		{"name": "Threats", "description": "Attack lifecycles on the matrix",
		 "lessons": ["attack", "ddos",], "requires": ["Basics",],},
	],
}`

func main() {
	c, err := course.Parse([]byte(manifest))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Outline())

	// Resolve lessons from the built-in library and obfuscate every
	// answer before "distribution".
	loader := func(ref string) (*core.Lesson, error) { return modules.Lesson(ref) }
	lessons, err := c.ResolveAll(loader)
	if err != nil {
		log.Fatal(err)
	}
	obfuscated := 0
	for _, unit := range lessons {
		for _, lesson := range unit {
			for _, m := range lesson.Modules {
				if m.HasQuestion {
					if err := m.ObfuscateAnswer(); err != nil {
						log.Fatal(err)
					}
					obfuscated++
				}
			}
		}
	}
	fmt.Printf("\nobfuscated %d module answers (files no longer reveal the correct option)\n\n", obfuscated)

	// A student works through the course in prerequisite order.
	progress := course.NewProgress(c)
	rng := rand.New(rand.NewSource(99))
	cohort := quiz.NewCohort()
	order, err := c.Order()
	if err != nil {
		log.Fatal(err)
	}
	for _, unit := range order {
		if !progress.Unlocked(unit.Name) {
			log.Fatalf("unit %s should be unlocked by now", unit.Name)
		}
		fmt.Printf("── unit %s\n", unit.Name)
		for _, lesson := range lessons[unit.Name] {
			g, err := game.New(lesson, "student", rng)
			if err != nil {
				log.Fatal(err)
			}
			playPerfectly(g)
			fmt.Printf("   %-28s %d/%d correct\n", lesson.Name,
				g.Session().CorrectCount(), g.Session().Answered())

			// Persist the session the way a classroom deployment
			// would, then fold the reloaded record into the cohort.
			var buf bytes.Buffer
			if err := g.Session().Save(&buf, time.Date(2026, 6, 10, 9, 0, 0, 0, time.UTC)); err != nil {
				log.Fatal(err)
			}
			reloaded, err := quiz.LoadSession(&buf)
			if err != nil {
				log.Fatal(err)
			}
			cohort.AddSession(reloaded)
		}
		if err := progress.Complete(unit.Name); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Print(progress.Summary())
	if !progress.Done() {
		log.Fatal("course should be complete")
	}
	fmt.Println("\neducator view (from saved session records):")
	fmt.Print(cohort.Report())
}

// playPerfectly fills each level and answers every question
// correctly — obfuscation must not impede a legitimate player.
func playPerfectly(g *game.Game) {
	answers := []game.Action{game.ActionAnswer1, game.ActionAnswer2, game.ActionAnswer3}
	for !g.Done() {
		switch g.Phase() {
		case game.PhasePlaying:
			g.Update(game.ActionFillAll)
			for g.Phase() == game.PhasePlaying {
				g.Update(game.ActionNext)
			}
		case game.PhaseQuestion:
			q, _ := g.Question()
			g.Update(answers[q.CorrectOption])
		case game.PhaseModuleDone:
			g.Update(game.ActionNext)
		}
	}
}
