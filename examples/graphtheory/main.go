// Graph theory: render all nine Fig 10 patterns, verify each with
// the structural classifier, and cross-check the triangle census
// with the GraphBLAS-style linear-algebra count — the paper's point
// that a traffic matrix "is not limited just to network
// communication".
package main

import (
	"fmt"
	"log"

	"repro/internal/matrix"
	"repro/internal/patterns"
	"repro/internal/render"
	"repro/internal/term"
)

func main() {
	term.SetEnabled(false)

	for _, e := range patterns.ByFamily(patterns.FamilyGraph) {
		m, colors, err := e.Build()
		if err != nil {
			log.Fatal(err)
		}
		fb, err := render.Matrix2D(m, render.Matrix2DOptions{
			Labels:     patterns.StandardLabels10,
			Colors:     colors,
			ShowColors: true,
			Title:      fmt.Sprintf("Fig %s: %s", e.Figure, e.Title),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fb.Text())

		kind := patterns.ClassifyGraph(m)
		p := matrix.NewProfile(m)
		tri, err := matrix.TriangleCount(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("classifier: %s | links %d | symmetric %v | triangles (trace(A³)/6): %d\n\n",
			kind, p.NNZ, p.Symmetric, tri)
		if kind.String() != e.Title {
			log.Fatalf("classifier mismatch for %s: got %s", e.ID, kind)
		}
	}
	fmt.Println("all nine graph-theory patterns verified structurally")
}
